package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAddi, Rd: 15, Rs1: 0, Imm: -2048},
		{Op: OpAddi, Rd: 1, Rs1: 1, Imm: 2047},
		{Op: OpLui, Rd: 7, Imm: 0xFFFFF},
		{Op: OpLw, Rd: 4, Rs1: 5, Imm: -4},
		{Op: OpSw, Rs1: 5, Rs2: 6, Imm: 60},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -8},
		{Op: OpJal, Rd: 0, Imm: 100},
		{Op: OpJalr, Rd: 1, Rs1: 2, Imm: 0},
	}
	for _, in := range cases {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %#x: %v", w, err)
		}
		if out != in {
			t.Errorf("round trip %+v -> %#x -> %+v", in, w, out)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	cases := []Instr{
		{Op: opEnd},
		{Op: OpAdd, Rd: 16},
		{Op: OpAdd, Rs1: -1},
		{Op: OpAddi, Imm: 2048},
		{Op: OpAddi, Imm: -2049},
		{Op: OpLui, Imm: -1},
		{Op: OpLui, Imm: 1 << 20},
	}
	for _, in := range cases {
		if _, err := in.Encode(); err == nil {
			t.Errorf("encode %+v should fail", in)
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(0xFF000000); err == nil {
		t.Error("decode of invalid opcode should fail")
	}
}

func TestImmSignExtension(t *testing.T) {
	f := func(raw int16) bool {
		imm := int32(raw % 2048)
		in := Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: imm}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"halt":           {Op: OpHalt},
		"add r1, r2, r3": {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"lw r4, -4(r5)":  {Op: OpLw, Rd: 4, Rs1: 5, Imm: -4},
		"sw r6, 60(r5)":  {Op: OpSw, Rs1: 5, Rs2: 6, Imm: 60},
		"beq r1, r2, -8": {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -8},
		"addi r1, r1, 5": {Op: OpAddi, Rd: 1, Rs1: 1, Imm: 5},
		"lui r7, 0x10":   {Op: OpLui, Rd: 7, Imm: 0x10},
		"jal r0, 16":     {Op: OpJal, Rd: 0, Imm: 16},
		"jalr r1, r2, 0": {Op: OpJalr, Rd: 1, Rs1: 2, Imm: 0},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestAssembleBasics(t *testing.T) {
	prog, err := Assemble(`
		; a comment
		start:  addi r1, r0, 5   # trailing comment
		        sw r1, 0(r2)
		        halt
		data:   .word 0xDEADBEEF, 7
		        .space 8
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Words) != 3+2+2 {
		t.Fatalf("words = %d, want 7", len(prog.Words))
	}
	if prog.Symbols["start"] != 0x1000 || prog.Symbols["data"] != 0x100C {
		t.Errorf("symbols = %v", prog.Symbols)
	}
	if prog.Words[3] != 0xDEADBEEF || prog.Words[4] != 7 || prog.Words[5] != 0 {
		t.Errorf("data words = %#x", prog.Words[3:])
	}
	if prog.Size() != 28 {
		t.Errorf("Size = %d", prog.Size())
	}
}

func TestAssembleBranchTargets(t *testing.T) {
	prog, err := Assemble(`
		loop:   addi r1, r1, 1
		        bne r1, r2, loop
		        jal r0, loop
		        halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	// bne at pc=4, target 0: offset = 0 - 4 - 4 = -8
	in, _ := Decode(prog.Words[1])
	if in.Imm != -8 {
		t.Errorf("bne offset = %d, want -8", in.Imm)
	}
	// jal at pc=8, target 0: offset = -12
	in, _ = Decode(prog.Words[2])
	if in.Imm != -12 {
		t.Errorf("jal offset = %d, want -12", in.Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frobnicate r1, r2, r3",
		"bad register":     "add r1, r99, r3",
		"missing operand":  "add r1, r2",
		"bad label":        "my label: halt",
		"duplicate label":  "a: halt\na: halt",
		"undefined symbol": "jal r0, nowhere",
		"bad mem operand":  "lw r1, r2",
		"bad space":        ".space 7",
		"imm overflow":     "addi r1, r0, 99999",
		"bad word value":   ".word zork",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Assemble(src, 0); err == nil {
				t.Errorf("Assemble(%q) should fail", src)
			}
		})
	}
	if _, err := Assemble("halt", 2); err == nil {
		t.Error("unaligned base should fail")
	}
}

func TestVMArithmetic(t *testing.T) {
	v, _, err := RunProgram(`
		addi r1, r0, 6
		addi r2, r0, 7
		mul  r3, r1, r2
		sub  r4, r3, r1
		xor  r5, r1, r2
		slli r6, r1, 4
		srli r7, r6, 2
		halt
	`, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]uint32{1: 6, 2: 7, 3: 42, 4: 36, 5: 1, 6: 96, 7: 24}
	for r, w := range want {
		if v.Regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, v.Regs[r], w)
		}
	}
}

func TestVMR0Immutable(t *testing.T) {
	v, _, err := RunProgram("addi r0, r0, 99\nhalt", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Regs[0] != 0 {
		t.Error("r0 must stay zero")
	}
}

func TestVMLoadStore(t *testing.T) {
	v, accs, err := RunProgram(`
		lui  r8, 0x10
		addi r1, r0, 0x5A
		sw   r1, 4(r8)
		lw   r2, 4(r8)
		sb   r1, 9(r8)
		lbu  r3, 9(r8)
		halt
	`, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Regs[2] != 0x5A || v.Regs[3] != 0x5A {
		t.Errorf("r2=%#x r3=%#x, want 0x5A", v.Regs[2], v.Regs[3])
	}
	// Trace: 7 fetches + 2 writes + 2 reads.
	var f, r, w int
	for _, a := range accs {
		switch a.Op {
		case trace.Fetch:
			f++
		case trace.Read:
			r++
		case trace.Write:
			w++
		}
	}
	if f != 7 || r != 2 || w != 2 {
		t.Errorf("trace mix f=%d r=%d w=%d, want 7/2/2", f, r, w)
	}
	// Write payloads carry the stored data.
	for _, a := range accs {
		if a.Op == trace.Write && a.Size == 4 && a.Data[0] != 0x5A {
			t.Errorf("sw payload = %x", a.Data)
		}
	}
}

func TestVMBranches(t *testing.T) {
	v, _, err := RunProgram(`
		addi r1, r0, 0
		addi r2, r0, 10
	loop:	bge  r1, r2, done
		addi r1, r1, 1
		jal  r0, loop
	done:	halt
	`, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Regs[1] != 10 {
		t.Errorf("loop counter = %d, want 10", v.Regs[1])
	}
}

func TestVMJalLinksReturn(t *testing.T) {
	v, _, err := RunProgram(`
		jal  r1, func
		halt
	func:	addi r2, r0, 42
		jalr r0, r1, 0
	`, 0x100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Regs[2] != 42 {
		t.Error("function body did not run")
	}
	if v.Regs[1] != 0x104 {
		t.Errorf("link register = %#x, want 0x104", v.Regs[1])
	}
}

func TestVMRunawayGuard(t *testing.T) {
	_, _, err := RunProgram("loop: jal r0, loop", 0, 100)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway program error = %v", err)
	}
}

func TestVMInvalidInstruction(t *testing.T) {
	_, _, err := RunProgram(".word 0xFF000000", 0, 10)
	if err == nil {
		t.Error("executing garbage should fail")
	}
}

func TestProgSumArrayResult(t *testing.T) {
	v, _, err := RunProgram(ProgSumArray, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	// sum of i^2 for i in [0,255] = 255*256*511/6
	want := uint32(255 * 256 * 511 / 6)
	if got := v.Mem.ReadUint32(0x11000); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestProgMemcpyResult(t *testing.T) {
	v, _, err := RunProgram(ProgMemcpy, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i += 17 {
		want := uint32(3*i + 1)
		if got := v.Mem.ReadUint32(0x11000 + uint64(4*i)); got != want {
			t.Errorf("dst[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestProgFibResult(t *testing.T) {
	v, _, err := RunProgram(ProgFib, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	a, b := uint32(0), uint32(1)
	for i := 0; i < 64; i++ {
		if got := v.Mem.ReadUint32(0x10000 + uint64(4*i)); got != a {
			t.Fatalf("fib[%d] = %d, want %d", i, got, a)
		}
		a, b = b, a+b
	}
}

func TestProgMatmulResult(t *testing.T) {
	v, _, err := RunProgram(ProgMatmul, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var want uint32
			for k := 0; k < 8; k++ {
				want += uint32(i*8+k) * uint32(k*8+j)
			}
			got := v.Mem.ReadUint32(0x10200 + uint64(4*(i*8+j)))
			if got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestProgStrideResult(t *testing.T) {
	v, _, err := RunProgram(ProgStride, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	for i := 0; i < 4096; i += 16 {
		want += uint32(i & 255)
	}
	if got := v.Mem.ReadUint32(0x20000); got != want {
		t.Errorf("stride sum = %d, want %d", got, want)
	}
}

func TestProgPointerChaseResult(t *testing.T) {
	v, _, err := RunProgram(ProgPointerChase, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the chase functionally.
	idx := 0
	var want uint32
	for hop := 0; hop < 4096; hop++ {
		want += uint32(idx)
		idx = (idx * 17) & 127
	}
	if got := v.Mem.ReadUint32(0x20000); got != want {
		t.Errorf("chase sum = %d, want %d", got, want)
	}
}

func TestAllProgramsRunAndEmitAllOpKinds(t *testing.T) {
	for name, src := range Programs() {
		src := src
		t.Run(name, func(t *testing.T) {
			_, accs, err := RunProgram(src, CodeBase, DefaultMaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			var f, r, w int
			for _, a := range accs {
				if err := a.Validate(); err != nil {
					t.Fatalf("invalid access in trace: %v", err)
				}
				switch a.Op {
				case trace.Fetch:
					f++
				case trace.Read:
					r++
				case trace.Write:
					w++
				}
			}
			if f == 0 || w == 0 {
				t.Errorf("trace mix f=%d r=%d w=%d: every kernel fetches and writes", f, r, w)
			}
			if name != "fib" && r == 0 {
				t.Errorf("kernel %s should read data", name)
			}
		})
	}
}

func TestProgramNamesSorted(t *testing.T) {
	names := ProgramNames()
	if len(names) != len(Programs()) {
		t.Fatal("name count mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestProgCRC32Result(t *testing.T) {
	v, _, err := RunProgram(ProgCRC32, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate functionally with the stdlib-equivalent bitwise loop.
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i*i) ^ 0x55
	}
	crc := ^uint32(0)
	for _, b := range buf {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	crc = ^crc
	if got := v.Mem.ReadUint32(0x20000); got != crc {
		t.Errorf("crc = %#x, want %#x", got, crc)
	}
}

func TestProgBSearchResult(t *testing.T) {
	v, _, err := RunProgram(ProgBSearch, CodeBase, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate the LCG and searches functionally.
	state := uint32(12345)
	found := uint32(0)
	for q := 0; q < 256; q++ {
		state = state*0x1966000D + 63 // lui imm20<<12 | ori 0xD, as the asm builds it
		key := state >> 8 & 0x7FF
		// a[i] = 3*i for i in [0,1024): every key <= 2047 that is a
		// multiple of 3 has key/3 <= 682 < 1024, so it is found.
		if key%3 == 0 {
			found++
		}
	}
	if got := v.Mem.ReadUint32(0x20000); got != found {
		t.Errorf("found = %d, want %d", got, found)
	}
}
