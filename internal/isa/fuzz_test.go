package isa

import "testing"

// FuzzAssemble checks the assembler never panics and that anything it
// accepts disassembles and re-encodes losslessly.
func FuzzAssemble(f *testing.F) {
	f.Add("addi r1, r0, 5\nhalt")
	f.Add("loop: bne r1, r2, loop")
	f.Add(".word 1, 2, 3\n.space 8")
	f.Add("a: b: c: halt")
	f.Add("lw r1, -4(r2)")
	f.Add("lui r1, 0xFFFFF")
	f.Add(":")
	f.Add("add r1 r2 r3")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src, 0x1000)
		if err != nil {
			return
		}
		// Every accepted word must either decode (and re-encode to the
		// same bits) or be data.
		for i, w := range prog.Words {
			inst, err := Decode(w)
			if err != nil {
				continue // data word
			}
			back, err := inst.Encode()
			if err != nil {
				t.Fatalf("word %d: decoded %v does not re-encode: %v", i, inst, err)
			}
			if back != w {
				t.Fatalf("word %d: %#x -> %v -> %#x", i, w, inst, back)
			}
		}
		// The listing must render without panicking.
		_ = Disassemble(prog)
	})
}

// FuzzVMStep checks that executing arbitrary instruction words never
// panics the VM (invalid opcodes must error out cleanly).
func FuzzVMStep(f *testing.F) {
	f.Add(uint32(0))          // halt
	f.Add(uint32(0x01123000)) // add
	f.Add(uint32(0xFF000000)) // invalid
	f.Fuzz(func(t *testing.T, w uint32) {
		src := ".word " + itoa(w)
		_, _, err := RunProgram(src, 0, 4)
		_ = err // errors are fine; panics are not
	})
}

func itoa(w uint32) string {
	if w == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for w > 0 {
		i--
		buf[i] = byte('0' + w%10)
		w /= 10
	}
	return string(buf[i:])
}
