// Package isa implements a small load/store instruction set with an
// assembler and a functional VM. The CNT-Cache paper evaluates its cache
// on benchmark programs; the VM substitutes for that program substrate by
// generating genuine instruction-fetch and data-reference streams — with
// live data values, which the adaptive encoder's behaviour depends on —
// from little kernels written in assembly.
//
// The machine: 16 32-bit registers (r0 hardwired to zero), a flat
// byte-addressed memory, fixed 4-byte instructions:
//
//	[31:24] opcode  [23:20] rd  [19:16] rs1  [15:12] rs2  [11:0] imm12
//
// imm12 is sign-extended; LUI instead uses [19:0] as imm20 loaded into the
// upper 20 bits of rd. Loads/stores are 32-bit words or single bytes with
// imm12(rs1) addressing. Branch offsets are in bytes relative to the next
// instruction.
package isa

import "fmt"

// Opcode enumerates the instruction set.
type Opcode uint8

// The instruction set.
const (
	OpHalt Opcode = iota
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpMul
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpLui
	OpLw
	OpSw
	OpLbu
	OpSb
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJal
	OpJalr
	opEnd // sentinel
)

var opNames = map[Opcode]string{
	OpHalt: "halt",
	OpAdd:  "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpMul: "mul",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpLui: "lui",
	OpLw: "lw", OpSw: "sw", OpLbu: "lbu", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJal: "jal", OpJalr: "jalr",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Opcode) Valid() bool { _, ok := opNames[o]; return ok }

// Instr is one decoded instruction.
type Instr struct {
	Op           Opcode
	Rd, Rs1, Rs2 int
	Imm          int32 // sign-extended imm12, or raw imm20 for LUI
}

// Encode packs the instruction into its 32-bit form.
func (i Instr) Encode() (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if i.Rd < 0 || i.Rd > 15 || i.Rs1 < 0 || i.Rs1 > 15 || i.Rs2 < 0 || i.Rs2 > 15 {
		return 0, fmt.Errorf("isa: register out of range in %+v", i)
	}
	w := uint32(i.Op)<<24 | uint32(i.Rd)<<20
	if i.Op == OpLui {
		if i.Imm < 0 || i.Imm > 0xFFFFF {
			return 0, fmt.Errorf("isa: lui imm20 %d out of range", i.Imm)
		}
		return w | uint32(i.Imm), nil
	}
	if i.Imm < -2048 || i.Imm > 2047 {
		return 0, fmt.Errorf("isa: imm12 %d out of range for %s", i.Imm, i.Op)
	}
	return w | uint32(i.Rs1)<<16 | uint32(i.Rs2)<<12 | (uint32(i.Imm) & 0xFFF), nil
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode byte %#x in %#x", uint8(op), w)
	}
	i := Instr{Op: op, Rd: int(w >> 20 & 0xF)}
	if op == OpLui {
		i.Imm = int32(w & 0xFFFFF)
		return i, nil
	}
	i.Rs1 = int(w >> 16 & 0xF)
	i.Rs2 = int(w >> 12 & 0xF)
	imm := int32(w & 0xFFF)
	if imm&0x800 != 0 {
		imm -= 0x1000
	}
	i.Imm = imm
	return i, nil
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpHalt:
		return "halt"
	case OpLui:
		return fmt.Sprintf("lui r%d, %#x", i.Rd, i.Imm)
	case OpLw, OpLbu:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSw, OpSb:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpJal:
		return fmt.Sprintf("jal r%d, %d", i.Rd, i.Imm)
	case OpJalr:
		return fmt.Sprintf("jalr r%d, r%d, %d", i.Rd, i.Rs1, i.Imm)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}
