package isa

import (
	"strings"
	"testing"
)

func TestDisassembleListing(t *testing.T) {
	prog, err := Assemble(`
		start:  addi r1, r0, 5
		loop:   bne r1, r0, loop
		        halt
		data:   .word 0xFF000000
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(prog)
	for _, frag := range []string{
		"start:", "loop:", "data:",
		"addi r1, r0, 5",
		"halt",
		".word 0xff000000", // invalid opcode byte renders as data
		"0x00001000",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("listing missing %q:\n%s", frag, out)
		}
	}
}

func TestDisassembleRoundTripsThroughAssembler(t *testing.T) {
	// Every bundled program must disassemble without losing instructions:
	// the listing has one line per word plus label lines.
	for name, src := range Programs() {
		prog, err := Assemble(src, CodeBase)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := Disassemble(prog)
		lines := 0
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, ":  ") { // address-annotated word line
				lines++
			}
		}
		if lines != len(prog.Words) {
			t.Errorf("%s: %d listing lines for %d words", name, lines, len(prog.Words))
		}
	}
}
