package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a program as an address-annotated listing. Words
// that do not decode as instructions are shown as .word data, so mixed
// code/data programs list cleanly.
func Disassemble(p *Program) string {
	// Invert the symbol table for label annotations.
	labels := map[uint64][]string{}
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	var sb strings.Builder
	for i, w := range p.Words {
		addr := p.Base + uint64(4*i)
		for _, l := range labels[addr] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		inst, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&sb, "  %#08x:  %08x    .word %#x\n", addr, w, w)
			continue
		}
		fmt.Fprintf(&sb, "  %#08x:  %08x    %s\n", addr, w, inst)
	}
	return sb.String()
}
