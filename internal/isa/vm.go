package isa

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// VM executes a loaded program against a memory image, emitting every
// instruction fetch and data reference to a trace sink.
type VM struct {
	Mem  *mem.Memory
	Regs [16]uint32
	PC   uint64

	sink  trace.Sink
	steps uint64
}

// NewVM builds a VM over the given memory, reporting accesses to sink
// (nil discards them).
func NewVM(m *mem.Memory, sink trace.Sink) *VM {
	if sink == nil {
		sink = trace.SinkFunc(func(trace.Access) error { return nil })
	}
	return &VM{Mem: m, sink: sink}
}

// Load copies a program into memory and points PC at its base.
func (v *VM) Load(p *Program) {
	for i, w := range p.Words {
		v.Mem.WriteUint32(p.Base+uint64(4*i), w)
	}
	v.PC = p.Base
}

// Steps returns the number of instructions executed.
func (v *VM) Steps() uint64 { return v.steps }

// Run executes until HALT or maxSteps instructions, whichever first.
// Exceeding maxSteps is an error (runaway program).
func (v *VM) Run(maxSteps uint64) error {
	for v.steps < maxSteps {
		halted, err := v.Step()
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
	return fmt.Errorf("isa: program exceeded %d steps at pc=%#x", maxSteps, v.PC)
}

// Step executes one instruction, returning true on HALT.
func (v *VM) Step() (bool, error) {
	if err := v.sink.Access(trace.Access{Op: trace.Fetch, Addr: v.PC, Size: 4}); err != nil {
		return false, err
	}
	w := v.Mem.ReadUint32(v.PC)
	inst, err := Decode(w)
	if err != nil {
		return false, fmt.Errorf("isa: pc=%#x: %w", v.PC, err)
	}
	v.steps++
	next := v.PC + 4

	rs1 := v.Regs[inst.Rs1]
	rs2 := v.Regs[inst.Rs2]
	setRd := func(val uint32) {
		if inst.Rd != 0 {
			v.Regs[inst.Rd] = val
		}
	}

	switch inst.Op {
	case OpHalt:
		return true, nil
	case OpAdd:
		setRd(rs1 + rs2)
	case OpSub:
		setRd(rs1 - rs2)
	case OpAnd:
		setRd(rs1 & rs2)
	case OpOr:
		setRd(rs1 | rs2)
	case OpXor:
		setRd(rs1 ^ rs2)
	case OpSll:
		setRd(rs1 << (rs2 & 31))
	case OpSrl:
		setRd(rs1 >> (rs2 & 31))
	case OpMul:
		setRd(rs1 * rs2)
	case OpAddi:
		setRd(rs1 + uint32(inst.Imm))
	case OpAndi:
		setRd(rs1 & uint32(inst.Imm))
	case OpOri:
		setRd(rs1 | uint32(inst.Imm))
	case OpXori:
		setRd(rs1 ^ uint32(inst.Imm))
	case OpSlli:
		setRd(rs1 << (uint32(inst.Imm) & 31))
	case OpSrli:
		setRd(rs1 >> (uint32(inst.Imm) & 31))
	case OpLui:
		setRd(uint32(inst.Imm) << 12)
	case OpLw:
		addr := uint64(rs1 + uint32(inst.Imm))
		if err := v.sink.Access(trace.Access{Op: trace.Read, Addr: addr, Size: 4}); err != nil {
			return false, err
		}
		setRd(v.Mem.ReadUint32(addr))
	case OpLbu:
		addr := uint64(rs1 + uint32(inst.Imm))
		if err := v.sink.Access(trace.Access{Op: trace.Read, Addr: addr, Size: 1}); err != nil {
			return false, err
		}
		var b [1]byte
		v.Mem.Read(addr, b[:])
		setRd(uint32(b[0]))
	case OpSw:
		addr := uint64(rs1 + uint32(inst.Imm))
		data := []byte{byte(rs2), byte(rs2 >> 8), byte(rs2 >> 16), byte(rs2 >> 24)}
		if err := v.sink.Access(trace.Access{Op: trace.Write, Addr: addr, Size: 4, Data: data}); err != nil {
			return false, err
		}
		v.Mem.WriteUint32(addr, rs2)
	case OpSb:
		addr := uint64(rs1 + uint32(inst.Imm))
		data := []byte{byte(rs2)}
		if err := v.sink.Access(trace.Access{Op: trace.Write, Addr: addr, Size: 1, Data: data}); err != nil {
			return false, err
		}
		v.Mem.Write(addr, data)
	case OpBeq:
		if rs1 == rs2 {
			next = v.PC + 4 + uint64(int64(inst.Imm))
		}
	case OpBne:
		if rs1 != rs2 {
			next = v.PC + 4 + uint64(int64(inst.Imm))
		}
	case OpBlt:
		if int32(rs1) < int32(rs2) {
			next = v.PC + 4 + uint64(int64(inst.Imm))
		}
	case OpBge:
		if int32(rs1) >= int32(rs2) {
			next = v.PC + 4 + uint64(int64(inst.Imm))
		}
	case OpJal:
		setRd(uint32(v.PC + 4))
		next = v.PC + 4 + uint64(int64(inst.Imm))
	case OpJalr:
		setRd(uint32(v.PC + 4))
		next = uint64(rs1 + uint32(inst.Imm))
	default:
		return false, fmt.Errorf("isa: pc=%#x: unimplemented %v", v.PC, inst.Op)
	}
	v.PC = next
	return false, nil
}

// RunProgram assembles src at base, loads it into a fresh memory image,
// runs it to completion and returns the VM (for register/memory
// inspection) and the collected trace.
func RunProgram(src string, base uint64, maxSteps uint64) (*VM, []trace.Access, error) {
	prog, err := Assemble(src, base)
	if err != nil {
		return nil, nil, err
	}
	var accs []trace.Access
	m := mem.New()
	v := NewVM(m, trace.SinkFunc(func(a trace.Access) error {
		accs = append(accs, a)
		return nil
	}))
	v.Load(prog)
	if err := v.Run(maxSteps); err != nil {
		return nil, nil, err
	}
	return v, accs, nil
}
