package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxSpaceBytes bounds a single .space directive (and with it the
// assembled image growth per source line), so malformed or hostile input
// cannot demand multi-gigabyte allocations: the directive's 32-bit size
// field otherwise admits ~4 GiB from seven characters of input.
const MaxSpaceBytes = 1 << 20

// Program is an assembled binary: instruction/data words plus the resolved
// symbol table.
type Program struct {
	// Base is the load address of the first word.
	Base uint64
	// Words are the assembled 32-bit words in address order.
	Words []uint32
	// Symbols maps labels to absolute addresses.
	Symbols map[string]uint64
}

// Size returns the program's footprint in bytes.
func (p *Program) Size() int { return len(p.Words) * 4 }

// Assemble translates assembly text into a Program loaded at base.
//
// Syntax: one instruction, directive or label per line; ';' and '#' start
// comments. Labels end with ':'. Registers are r0..r15. Immediates are
// decimal or 0x-hex, or a label name (resolved to its absolute address for
// non-branch immediates and to a relative offset for branches and jal).
// Directives: ".word v[, v...]" emits literal words, ".space n" emits n/4
// zero words.
func Assemble(src string, base uint64) (*Program, error) {
	if base%4 != 0 {
		return nil, fmt.Errorf("asm: base %#x must be word aligned", base)
	}
	type item struct {
		line   int
		mnem   string
		args   []string
		isWord bool
		vals   []string
	}
	var items []item
	symbols := map[string]uint64{}
	pc := base

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by code on the same line.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("asm: line %d: bad label %q", ln+1, label)
			}
			if _, dup := symbols[label]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", ln+1, label)
			}
			symbols[label] = pc
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " , "))
		mnem := strings.ToLower(fields[0])
		rest := strings.Join(fields[1:], " ")
		args := splitArgs(rest)
		switch mnem {
		case ".word":
			items = append(items, item{line: ln + 1, isWord: true, vals: args})
			pc += uint64(4 * len(args))
		case ".space":
			if len(args) != 1 {
				return nil, fmt.Errorf("asm: line %d: .space wants one size", ln+1)
			}
			n, err := strconv.ParseUint(args[0], 0, 32)
			if err != nil || n%4 != 0 {
				return nil, fmt.Errorf("asm: line %d: bad .space size %q", ln+1, args[0])
			}
			if n > MaxSpaceBytes {
				// Bound found by FuzzAsm: an unchecked 32-bit size let a
				// single ".space 4294967292" directive demand a ~16 GB
				// allocation before any program could plausibly use it.
				return nil, fmt.Errorf("asm: line %d: .space size %d exceeds the %d-byte limit", ln+1, n, MaxSpaceBytes)
			}
			zeros := make([]string, n/4)
			for i := range zeros {
				zeros[i] = "0"
			}
			items = append(items, item{line: ln + 1, isWord: true, vals: zeros})
			pc += n
		default:
			items = append(items, item{line: ln + 1, mnem: mnem, args: args})
			pc += 4
		}
	}

	// Second pass: encode with symbols resolved.
	prog := &Program{Base: base, Symbols: symbols}
	pc = base
	for _, it := range items {
		if it.isWord {
			for _, v := range it.vals {
				w, err := resolveValue(v, symbols)
				if err != nil {
					return nil, fmt.Errorf("asm: line %d: %w", it.line, err)
				}
				prog.Words = append(prog.Words, uint32(w))
				pc += 4
			}
			continue
		}
		inst, err := parseInstr(it.mnem, it.args, pc, symbols)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", it.line, err)
		}
		w, err := inst.Encode()
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", it.line, err)
		}
		prog.Words = append(prog.Words, w)
		pc += 4
	}
	return prog, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func resolveValue(s string, symbols map[string]uint64) (int64, error) {
	s = strings.TrimSpace(s)
	if addr, ok := symbols[s]; ok {
		return int64(addr), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// parseMemOperand parses "imm(rN)".
func parseMemOperand(s string, symbols map[string]uint64) (imm int32, rs1 int, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	v, err := resolveValue(immStr, symbols)
	if err != nil {
		return 0, 0, err
	}
	r, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	return int32(v), r, nil
}

func parseInstr(mnem string, args []string, pc uint64, symbols map[string]uint64) (Instr, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}
	reg := parseReg
	val := func(s string) (int64, error) { return resolveValue(s, symbols) }
	// Branch targets are relative to the *next* instruction.
	relative := func(s string) (int32, error) {
		if addr, ok := symbols[s]; ok {
			return int32(int64(addr) - int64(pc) - 4), nil
		}
		v, err := val(s)
		return int32(v), err
	}

	switch mnem {
	case "halt":
		if err := need(0); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpHalt}, nil
	case "add", "sub", "and", "or", "xor", "sll", "srl", "mul":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		rs2, err3 := reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, err
		}
		ops := map[string]Opcode{"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr,
			"xor": OpXor, "sll": OpSll, "srl": OpSrl, "mul": OpMul}
		return Instr{Op: ops[mnem], Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case "addi", "andi", "ori", "xori", "slli", "srli":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		v, err3 := val(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, err
		}
		ops := map[string]Opcode{"addi": OpAddi, "andi": OpAndi, "ori": OpOri,
			"xori": OpXori, "slli": OpSlli, "srli": OpSrli}
		return Instr{Op: ops[mnem], Rd: rd, Rs1: rs1, Imm: int32(v)}, nil
	case "lui":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		v, err2 := val(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpLui, Rd: rd, Imm: int32(v)}, nil
	case "lw", "lbu":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		imm, rs1, err2 := parseMemOperand(args[1], symbols)
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, err
		}
		op := OpLw
		if mnem == "lbu" {
			op = OpLbu
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, nil
	case "sw", "sb":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rs2, err1 := reg(args[0])
		imm, rs1, err2 := parseMemOperand(args[1], symbols)
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, err
		}
		op := OpSw
		if mnem == "sb" {
			op = OpSb
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
	case "beq", "bne", "blt", "bge":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		rs1, err1 := reg(args[0])
		rs2, err2 := reg(args[1])
		off, err3 := relative(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, err
		}
		ops := map[string]Opcode{"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge}
		return Instr{Op: ops[mnem], Rs1: rs1, Rs2: rs2, Imm: off}, nil
	case "jal":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		off, err2 := relative(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpJal, Rd: rd, Imm: off}, nil
	case "jalr":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		v, err3 := val(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: int32(v)}, nil
	default:
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
