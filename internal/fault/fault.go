// Package fault models CNT device defects and injects them into a
// simulated cache deterministically. Real carbon-nanotube arrays do not
// ship perfect: metallic CNTs short cells into stuck-at-0/stuck-at-1
// behaviour, CNT-count variation spreads the per-cell switching energy,
// cosmic-ray class transients flip bits on individual accesses, and the
// widened H&D metadata of CNT-Cache adds new state (the per-line access
// counters) that upsets can corrupt. This package gives each of those a
// seeded, reproducible model so experiments can quantify how far the
// adaptive-encoding win degrades as the array gets worse.
//
// Seeding contract: an Injector is a pure function of (Config, geometry,
// label). The label keys the per-cache RNG stream ("L1D" and "L1I" see
// independent faults from the same Config), and every random draw is
// ordered by the cache's serial access stream, so a faulted simulation
// is bit-reproducible for any worker-pool size — parallelism in this
// codebase is across independent simulations, never within one.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/sram"
)

// Config declares a fault model. The zero value injects nothing and is
// what every existing run implicitly uses; Enabled reports whether any
// knob is live. Fields are JSON-serializable so run-spec documents
// (internal/config) and fuzzers (check.FaultConfigInvariant) share one
// schema.
type Config struct {
	// Seed keys the fault-site sampling and the transient draw stream;
	// 0 means 1. Each cache mixes its label into the seed, so both L1s
	// of one run see independent faults.
	Seed int64 `json:"seed,omitempty"`
	// StuckAtZero and StuckAtOne are per-cell probabilities that a data
	// cell is shorted to the respective value (metallic-CNT defects).
	// Stuck cells are sampled once at array construction and persist for
	// the whole run.
	StuckAtZero float64 `json:"stuck_at_zero,omitempty"`
	StuckAtOne  float64 `json:"stuck_at_one,omitempty"`
	// EnergySpread is the half-width of the per-line energy-scale
	// variation modeling CNT-count spread: each line's data-cell
	// energies are multiplied by a factor drawn uniformly from
	// [1-EnergySpread, 1+EnergySpread]. Must be in [0,1).
	EnergySpread float64 `json:"energy_spread,omitempty"`
	// TransientRead and TransientWrite are per-access probabilities that
	// one bit of the accessed span flips in flight (a transient upset on
	// the bitline or sense amp).
	TransientRead  float64 `json:"transient_read,omitempty"`
	TransientWrite float64 `json:"transient_write,omitempty"`
	// PredictorUpset is the per-checkpoint probability that one bit of
	// the line's H&D history counters flips just before the window
	// decision is evaluated.
	PredictorUpset float64 `json:"predictor_upset,omitempty"`
}

// Enabled reports whether the configuration injects anything at all. A
// disabled config builds no injector, so the simulation keeps its
// byte-identical zero-fault path.
func (c Config) Enabled() bool {
	return c.StuckAtZero > 0 || c.StuckAtOne > 0 || c.EnergySpread > 0 ||
		c.TransientRead > 0 || c.TransientWrite > 0 || c.PredictorUpset > 0
}

// Validate checks every knob's range.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"stuck_at_zero", c.StuckAtZero},
		{"stuck_at_one", c.StuckAtOne},
		{"transient_read", c.TransientRead},
		{"transient_write", c.TransientWrite},
		{"predictor_upset", c.PredictorUpset},
	} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("fault: %s must be a probability in [0,1], got %g", p.name, p.v)
		}
	}
	if c.StuckAtZero+c.StuckAtOne > 1 {
		return fmt.Errorf("fault: stuck_at_zero+stuck_at_one must not exceed 1, got %g",
			c.StuckAtZero+c.StuckAtOne)
	}
	if c.EnergySpread < 0 || c.EnergySpread >= 1 || c.EnergySpread != c.EnergySpread {
		return fmt.Errorf("fault: energy_spread must be in [0,1), got %g", c.EnergySpread)
	}
	return nil
}

// AtRate derives a single-knob degradation config from one composite
// fault rate r: stuck cells at r (split evenly between the two polarities),
// transient flips at r per access, counter upsets at r per checkpoint.
// The energy spread stays 0 — it shifts energies without corrupting
// state, so the sweep experiment exercises it separately.
func AtRate(r float64, seed int64) Config {
	return Config{
		Seed:           seed,
		StuckAtZero:    r / 2,
		StuckAtOne:     r / 2,
		TransientRead:  r,
		TransientWrite: r,
		PredictorUpset: r,
	}
}

// ParseConfig decodes a fault-spec JSON document strictly (unknown
// fields and trailing garbage rejected) and validates it. This is the
// surface FuzzFaultConfig drives.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("fault: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("fault: trailing data after config document")
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// StuckCell is one shorted data cell of a line.
type StuckCell struct {
	// Bit is the cell's bit index within the line payload
	// (0 .. lineBits-1, bit b of byte b/8 counted LSB-first).
	Bit int
	// One is the value the cell is stuck at.
	One bool
}

// Stats counts what an injector has done. Sampling counters (StuckCells)
// are fixed at construction; the rest accumulate as the simulation runs.
type Stats struct {
	// StuckCells is the number of shorted data cells sampled into the
	// array at construction.
	StuckCells uint64 `json:"stuck_cells"`
	// ReadFlips and WriteFlips count transient in-flight bit flips
	// injected on demand accesses.
	ReadFlips  uint64 `json:"read_flips"`
	WriteFlips uint64 `json:"write_flips"`
	// Upsets counts H&D counter-bit corruptions injected at window
	// checkpoints.
	Upsets uint64 `json:"upsets"`
	// CorruptedBits counts stored bits whose stuck cell disagreed with
	// the value the access wanted, summed over every access that touched
	// them (a line sitting on a hostile stuck cell is counted each time).
	CorruptedBits uint64 `json:"corrupted_bits"`
}

// Total returns the number of discrete fault events injected while
// running (transient flips plus counter upsets) — the count the obs
// layer's fault events and the summary record must agree on.
func (s Stats) Total() uint64 { return s.ReadFlips + s.WriteFlips + s.Upsets }

// Injector holds the sampled fault sites of one cache array plus the
// transient draw stream. It is built once per simulated cache and used
// only from that cache's (serial) access path; it is not safe for
// concurrent use.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	lineBits int
	ways     int

	// stuck[set*ways+way] lists the line's shorted cells in bit order;
	// scale[set*ways+way] is the line's energy multiplier.
	stuck [][]StuckCell
	scale []float64

	stats Stats
}

// mixSeed folds the cache label into the config seed so distinct caches
// of one run draw independent fault streams.
func mixSeed(seed int64, label string) int64 {
	if seed == 0 {
		seed = 1
	}
	h := fnv.New64a()
	fmt.Fprint(h, label)
	return seed ^ int64(h.Sum64())
}

// New samples the static fault sites for one cache array. The label
// keys the RNG stream (use the cache's name); geometry supplies the
// cell population. Returns an error on an invalid config.
func New(cfg Config, geom sram.Geometry, label string) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(mixSeed(cfg.Seed, label))),
		lineBits: geom.LineBytes * 8,
		ways:     geom.Ways,
		stuck:    make([][]StuckCell, geom.Lines()),
		scale:    make([]float64, geom.Lines()),
	}
	pStuck := cfg.StuckAtZero + cfg.StuckAtOne
	for li := range inj.stuck {
		inj.scale[li] = 1
		if cfg.EnergySpread > 0 {
			inj.scale[li] = 1 + cfg.EnergySpread*(2*inj.rng.Float64()-1)
		}
		if pStuck <= 0 {
			continue
		}
		for bit := 0; bit < inj.lineBits; bit++ {
			u := inj.rng.Float64()
			if u >= pStuck {
				continue
			}
			inj.stuck[li] = append(inj.stuck[li], StuckCell{Bit: bit, One: u < cfg.StuckAtOne})
			inj.stats.StuckCells++
		}
	}
	return inj, nil
}

// Config returns the configuration the injector was built from.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats returns a snapshot of the fault accounting.
func (inj *Injector) Stats() Stats { return inj.stats }

// line maps (set, way) to the flat line index.
func (inj *Injector) line(set, way int) int { return set*inj.ways + way }

// Scale returns the line's energy multiplier (CNT-count spread).
func (inj *Injector) Scale(set, way int) float64 { return inj.scale[inj.line(set, way)] }

// Stuck returns the line's shorted cells in bit order. The slice aliases
// injector state and must not be mutated.
func (inj *Injector) Stuck(set, way int) []StuckCell { return inj.stuck[inj.line(set, way)] }

// ObserveCorrupted accounts stored bits whose stuck cell fought the
// access (the caller, which knows the encoding, counts them).
func (inj *Injector) ObserveCorrupted(n int) {
	inj.stats.CorruptedBits += uint64(n)
}

// TransientBit draws the transient-flip decision for one access of size
// bits over the given span. It returns the flipped bit index within the
// span and true when a flip fires; exactly one uniform is drawn per
// access (plus one for the position when it fires), keeping the stream
// deterministic and cheap. write selects which probability applies.
func (inj *Injector) TransientBit(write bool, spanBits int) (int, bool) {
	p := inj.cfg.TransientRead
	if write {
		p = inj.cfg.TransientWrite
	}
	if p <= 0 || spanBits <= 0 {
		return 0, false
	}
	if inj.rng.Float64() >= p {
		return 0, false
	}
	if write {
		inj.stats.WriteFlips++
	} else {
		inj.stats.ReadFlips++
	}
	return inj.rng.Intn(spanBits), true
}

// UpsetCounter draws the checkpoint-upset decision for one completed
// prediction window over counters of the given bit width. It returns
// which counter bit flips (0..2*counterBits-1: low half ANum, high half
// WrNum) and true when the upset fires.
func (inj *Injector) UpsetCounter(counterBits int) (int, bool) {
	p := inj.cfg.PredictorUpset
	if p <= 0 || counterBits <= 0 {
		return 0, false
	}
	if inj.rng.Float64() >= p {
		return 0, false
	}
	inj.stats.Upsets++
	return inj.rng.Intn(2 * counterBits), true
}
