package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sram"
)

func testGeom() sram.Geometry {
	return sram.Geometry{Sets: 64, Ways: 4, LineBytes: 64}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if (Config{Seed: 42}).Enabled() {
		t.Fatal("seed alone must not enable injection")
	}
	for name, c := range map[string]Config{
		"stuck0": {StuckAtZero: 0.1},
		"stuck1": {StuckAtOne: 0.1},
		"spread": {EnergySpread: 0.1},
		"tread":  {TransientRead: 0.1},
		"twrite": {TransientWrite: 0.1},
		"upset":  {PredictorUpset: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("%s: want enabled", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Config
		want string // substring of the error, "" for valid
	}{
		{"zero", Config{}, ""},
		{"full", Config{Seed: 7, StuckAtZero: 0.2, StuckAtOne: 0.3, EnergySpread: 0.5,
			TransientRead: 1, TransientWrite: 0.5, PredictorUpset: 0.01}, ""},
		{"negative-prob", Config{TransientRead: -0.1}, "transient_read"},
		{"prob-above-one", Config{PredictorUpset: 1.5}, "predictor_upset"},
		{"nan-prob", Config{StuckAtZero: math.NaN()}, "stuck_at_zero"},
		{"stuck-sum", Config{StuckAtZero: 0.6, StuckAtOne: 0.6}, "exceed 1"},
		{"spread-one", Config{EnergySpread: 1}, "energy_spread"},
		{"spread-negative", Config{EnergySpread: -0.2}, "energy_spread"},
		{"spread-nan", Config{EnergySpread: math.NaN()}, "energy_spread"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestAtRate(t *testing.T) {
	c := AtRate(1e-3, 99)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Fatal("AtRate(1e-3) must enable injection")
	}
	if c.StuckAtZero+c.StuckAtOne != 1e-3 {
		t.Errorf("stuck total = %g, want 1e-3", c.StuckAtZero+c.StuckAtOne)
	}
	if c.EnergySpread != 0 {
		t.Errorf("AtRate must leave energy spread 0, got %g", c.EnergySpread)
	}
	if z := AtRate(0, 99); z.Enabled() {
		t.Error("AtRate(0) must be disabled")
	}
}

func TestParseConfigStrict(t *testing.T) {
	c, err := ParseConfig([]byte(`{"seed": 5, "transient_read": 0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 5 || c.TransientRead != 0.25 {
		t.Fatalf("parsed %+v", c)
	}
	for name, doc := range map[string]string{
		"unknown-field": `{"transient_read": 0.25, "bogus": 1}`,
		"trailing":      `{"seed": 1} {"seed": 2}`,
		"invalid-range": `{"transient_read": 2}`,
		"not-json":      `seed=1`,
		"wrong-type":    `{"seed": "five"}`,
	} {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, StuckAtZero: 0.002, StuckAtOne: 0.001,
		EnergySpread: 0.2, TransientRead: 0.3, TransientWrite: 0.1, PredictorUpset: 0.05}
	build := func() *Injector {
		inj, err := New(cfg, testGeom(), "L1D")
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.stuck, b.stuck) {
		t.Fatal("stuck-cell sites differ across identical builds")
	}
	if !reflect.DeepEqual(a.scale, b.scale) {
		t.Fatal("energy scales differ across identical builds")
	}
	// The transient draw streams must replay identically too.
	for i := 0; i < 2000; i++ {
		ba, oka := a.TransientBit(i%3 == 0, 512)
		bb, okb := b.TransientBit(i%3 == 0, 512)
		if ba != bb || oka != okb {
			t.Fatalf("transient draw %d diverged: (%d,%v) vs (%d,%v)", i, ba, oka, bb, okb)
		}
		ua, oka2 := a.UpsetCounter(4)
		ub, okb2 := b.UpsetCounter(4)
		if ua != ub || oka2 != okb2 {
			t.Fatalf("upset draw %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestInjectorLabelIndependence(t *testing.T) {
	cfg := Config{Seed: 42, StuckAtZero: 0.01, StuckAtOne: 0.01}
	d, err := New(cfg, testGeom(), "L1D")
	if err != nil {
		t.Fatal(err)
	}
	i, err := New(cfg, testGeom(), "L1I")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(d.stuck, i.stuck) {
		t.Fatal("L1D and L1I drew identical fault sites; labels not mixed into seed")
	}
}

func TestInjectorZeroSeedMeansOne(t *testing.T) {
	cfg := Config{StuckAtZero: 0.01}
	z, err := New(cfg, testGeom(), "L1D")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	o, err := New(cfg, testGeom(), "L1D")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(z.stuck, o.stuck) {
		t.Fatal("seed 0 must alias seed 1")
	}
}

func TestInjectorStuckSampling(t *testing.T) {
	cfg := Config{Seed: 7, StuckAtZero: 0.004, StuckAtOne: 0.002}
	inj, err := New(cfg, testGeom(), "x")
	if err != nil {
		t.Fatal(err)
	}
	geom := testGeom()
	cells := geom.Lines() * geom.LineBytes * 8
	var counted uint64
	ones := 0
	for set := 0; set < geom.Sets; set++ {
		for way := 0; way < geom.Ways; way++ {
			prev := -1
			for _, sc := range inj.Stuck(set, way) {
				if sc.Bit <= prev || sc.Bit >= geom.LineBytes*8 {
					t.Fatalf("stuck bit out of order or range: %d after %d", sc.Bit, prev)
				}
				prev = sc.Bit
				counted++
				if sc.One {
					ones++
				}
			}
		}
	}
	if counted != inj.Stats().StuckCells {
		t.Fatalf("Stats().StuckCells = %d, counted %d", inj.Stats().StuckCells, counted)
	}
	// 0.6% of ~131k cells: expect hundreds, split ~2:1 zero:one.
	want := float64(cells) * 0.006
	if got := float64(counted); got < want/2 || got > want*2 {
		t.Fatalf("stuck count %v wildly off expectation %v", got, want)
	}
	if ones == 0 || int(counted)-ones == 0 {
		t.Fatalf("expected both polarities, got %d ones of %d", ones, counted)
	}
}

func TestInjectorScaleRange(t *testing.T) {
	spread := 0.25
	inj, err := New(Config{Seed: 3, EnergySpread: spread}, testGeom(), "x")
	if err != nil {
		t.Fatal(err)
	}
	geom := testGeom()
	varied := false
	for set := 0; set < geom.Sets; set++ {
		for way := 0; way < geom.Ways; way++ {
			s := inj.Scale(set, way)
			if s < 1-spread || s > 1+spread {
				t.Fatalf("scale %v outside [%v,%v]", s, 1-spread, 1+spread)
			}
			if s != 1 {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("expected at least one non-unit scale")
	}
	noSpread, err := New(Config{Seed: 3, TransientRead: 0.5}, testGeom(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if s := noSpread.Scale(5, 1); s != 1 {
		t.Fatalf("no-spread scale = %v, want exactly 1", s)
	}
}

func TestTransientAndUpsetAccounting(t *testing.T) {
	inj, err := New(Config{Seed: 11, TransientRead: 1, TransientWrite: 1, PredictorUpset: 1},
		testGeom(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if bit, ok := inj.TransientBit(false, 64); !ok || bit < 0 || bit >= 64 {
		t.Fatalf("p=1 read flip: got (%d,%v)", bit, ok)
	}
	if bit, ok := inj.TransientBit(true, 8); !ok || bit < 0 || bit >= 8 {
		t.Fatalf("p=1 write flip: got (%d,%v)", bit, ok)
	}
	if bit, ok := inj.UpsetCounter(4); !ok || bit < 0 || bit >= 8 {
		t.Fatalf("p=1 upset: got (%d,%v)", bit, ok)
	}
	st := inj.Stats()
	if st.ReadFlips != 1 || st.WriteFlips != 1 || st.Upsets != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Total() != 3 {
		t.Fatalf("Total() = %d, want 3", st.Total())
	}
	inj.ObserveCorrupted(5)
	if inj.Stats().CorruptedBits != 5 {
		t.Fatalf("CorruptedBits = %d", inj.Stats().CorruptedBits)
	}

	off, err := New(Config{Seed: 11, EnergySpread: 0.1}, testGeom(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := off.TransientBit(false, 64); ok {
		t.Fatal("p=0 must never flip")
	}
	if _, ok := off.UpsetCounter(4); ok {
		t.Fatal("p=0 must never upset")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{TransientRead: 2}, testGeom(), "x"); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(Config{}, sram.Geometry{Sets: 3, Ways: 1, LineBytes: 64}, "x"); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}
