// Package sram models the array-level structure of an SRAM cache macro:
// data array geometry, tag array, the widened metadata (H&D) columns the
// CNT-Cache architecture adds to every line, and the fixed per-access
// peripheral energy (decoder, wordline, column mux) that is paid on top of
// the per-bit cell energies from package cnfet.
//
// The peripheral energy matters for fidelity: adaptive encoding can only
// save cell energy, so the fraction of access energy spent in periphery
// bounds the achievable savings. The defaults keep periphery a realistic
// minor fraction of a full-line access.
package sram

import (
	"fmt"
	"math"

	"repro/internal/cnfet"
)

// Geometry describes one cache data array.
type Geometry struct {
	// Sets and Ways define the logical organization; LineBytes is the data
	// payload per line.
	Sets, Ways, LineBytes int

	// MetaBitsPerLine is the number of additional bits stored alongside
	// each line (the paper's "H&D" region: access history counters plus
	// encoding direction bits). Zero for a conventional cache.
	MetaBitsPerLine int
}

// Validate checks the geometry for positive power-of-two organization.
func (g *Geometry) Validate() error {
	switch {
	case g.Sets <= 0 || g.Ways <= 0 || g.LineBytes <= 0:
		return fmt.Errorf("sram: sets/ways/line must be positive, got %d/%d/%d", g.Sets, g.Ways, g.LineBytes)
	case g.Sets&(g.Sets-1) != 0:
		return fmt.Errorf("sram: sets must be a power of two, got %d", g.Sets)
	case g.LineBytes&(g.LineBytes-1) != 0:
		return fmt.Errorf("sram: line bytes must be a power of two, got %d", g.LineBytes)
	case g.MetaBitsPerLine < 0:
		return fmt.Errorf("sram: metadata bits must be non-negative, got %d", g.MetaBitsPerLine)
	}
	return nil
}

// Lines returns the total number of lines in the array.
func (g *Geometry) Lines() int { return g.Sets * g.Ways }

// DataBitsPerLine returns the payload width in bits (the paper's L).
func (g *Geometry) DataBitsPerLine() int { return g.LineBytes * 8 }

// CapacityBytes returns the data capacity of the array.
func (g *Geometry) CapacityBytes() int { return g.Lines() * g.LineBytes }

// IndexBits returns log2(Sets).
func (g *Geometry) IndexBits() int { return intLog2(g.Sets) }

// OffsetBits returns log2(LineBytes).
func (g *Geometry) OffsetBits() int { return intLog2(g.LineBytes) }

// TagBits returns the tag width for the given physical address width.
func (g *Geometry) TagBits(addrBits int) int {
	t := addrBits - g.IndexBits() - g.OffsetBits()
	if t < 0 {
		return 0
	}
	return t
}

func intLog2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

// Periphery describes the fixed dynamic energy of the circuits surrounding
// the cells, in femtojoules.
type Periphery struct {
	// DecodeEnergy is charged once per array access (row decoder +
	// wordline driver).
	DecodeEnergy float64

	// TagCompareEnergy is charged per way probed on a lookup.
	TagCompareEnergy float64

	// ColumnEnergy is charged per accessed data byte (column mux, write
	// drivers / output drivers).
	ColumnEnergy float64
}

// Validate checks that the peripheral energies are non-negative.
func (p *Periphery) Validate() error {
	if p.DecodeEnergy < 0 || p.TagCompareEnergy < 0 || p.ColumnEnergy < 0 {
		return fmt.Errorf("sram: peripheral energies must be non-negative: %+v", *p)
	}
	return nil
}

// DefaultPeriphery returns peripheral energies sized against the given
// cell energy table so that periphery is a realistic minor fraction
// (~10-15%) of a full 64-byte line access.
func DefaultPeriphery(tab cnfet.EnergyTable) Periphery {
	// Average per-bit read over a uniform value mix, as the scale anchor.
	avgBit := (tab.ReadZero + tab.ReadOne) / 2
	return Periphery{
		DecodeEnergy:     40 * avgBit,
		TagCompareEnergy: 6 * avgBit,
		ColumnEnergy:     0.4 * avgBit,
	}
}

// Array combines a geometry, a cell energy table and peripheral energies
// into the energy model for one physical SRAM macro.
type Array struct {
	Geom  Geometry
	Cells cnfet.EnergyTable
	Perif Periphery
}

// NewArray validates and assembles an Array.
func NewArray(g Geometry, cells cnfet.EnergyTable, p Periphery) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cells.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Array{Geom: g, Cells: cells, Perif: p}, nil
}

// LookupEnergy returns the energy of one set lookup: decode plus a tag
// compare in every way.
func (a *Array) LookupEnergy() float64 {
	return a.Perif.DecodeEnergy + float64(a.Geom.Ways)*a.Perif.TagCompareEnergy
}

// ReadEnergy returns the energy of reading nBytes of data of which ones
// bits are '1', including column periphery but excluding the set lookup.
func (a *Array) ReadEnergy(ones, nBytes int) float64 {
	return a.Cells.ReadBits(ones, nBytes*8) + float64(nBytes)*a.Perif.ColumnEnergy
}

// WriteEnergy returns the energy of writing nBytes of data of which ones
// bits are '1', including column periphery but excluding the set lookup.
func (a *Array) WriteEnergy(ones, nBytes int) float64 {
	return a.Cells.WriteBits(ones, nBytes*8) + float64(nBytes)*a.Perif.ColumnEnergy
}

// ReadMetaEnergy returns the energy of reading nBits metadata bits of
// which ones are '1'. Metadata columns share the cell design but not the
// byte-granular column periphery.
func (a *Array) ReadMetaEnergy(ones, nBits int) float64 {
	return a.Cells.ReadBits(ones, nBits)
}

// WriteMetaEnergy returns the energy of writing nBits metadata bits of
// which ones are '1'.
func (a *Array) WriteMetaEnergy(ones, nBits int) float64 {
	return a.Cells.WriteBits(ones, nBits)
}

// PeripheryFraction estimates the fraction of a full-line read (uniform
// data) spent in periphery. Used by tests to keep the model honest.
func (a *Array) PeripheryFraction() float64 {
	bits := a.Geom.DataBitsPerLine()
	cell := a.Cells.ReadBits(bits/2, bits)
	per := a.LookupEnergy() + float64(a.Geom.LineBytes)*a.Perif.ColumnEnergy
	return per / (per + cell)
}

// MetadataBits computes the H&D width for a CNT-Cache line: two access
// counters of ceil(log2(W+1)) bits each (A_num counts 0..W) plus one
// direction bit per partition.
func MetadataBits(window, partitions int) (int, error) {
	if window <= 0 {
		return 0, fmt.Errorf("sram: window must be positive, got %d", window)
	}
	if partitions <= 0 {
		return 0, fmt.Errorf("sram: partitions must be positive, got %d", partitions)
	}
	counterBits := int(math.Ceil(math.Log2(float64(window + 1))))
	if counterBits < 1 {
		counterBits = 1
	}
	return 2*counterBits + partitions, nil
}
