package sram

import (
	"bufio"
	"bytes"
	"embed"
	"fmt"
	"io"
	"math"
	"path"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnfet"
)

// CACTI run parsing and periphery calibration.
//
// CACTI is the standard cache-geometry estimator; its text reports are
// what architecture papers (this one included) size their arrays
// against. A run report states, for one (size, block, associativity,
// technology) point, the total dynamic energy per access and the
// access/cycle timing. Our energy model composes the same access from
// the opposite direction — per-bit cell energies (cnfet.EnergyTable)
// plus fixed periphery (Periphery) — so a CACTI run gives us an
// absolute anchor: Calibrate fits the periphery so that a full-line
// read on the CACTI geometry reproduces the run's per-access read
// energy exactly, while the cell table keeps the CNFET asymmetry the
// adaptive encoding exploits.
//
// Three runs are embedded (testdata/cacti/*.txt, kept verbatim as
// produced by CACTI 6.5 and 7.0.3DD) and mirrored by cnfet's cacti-*
// device presets; the run and the preset share a name, which is how
// the run layer knows to calibrate (run.resolveSide).

// CACTIParams is the digest of one CACTI run report: the configured
// geometry and the modeled energy/timing totals. Zero-valued fields
// were absent from the report (older CACTI versions omit, for example,
// the write energy and the time components).
type CACTIParams struct {
	// Name labels the run; filled from the registry filename for
	// embedded runs, free-form otherwise.
	Name string

	// SizeBytes, BlockBytes and Assoc are the configured organization.
	// Assoc 0 means fully associative (CACTI's own convention in both
	// its config echo and its report body).
	SizeBytes  int
	BlockBytes int
	Assoc      int
	// TechNM is the technology node in nanometers.
	TechNM int

	// ReadEnergyNJ, WriteEnergyNJ and SearchEnergyNJ are the total
	// dynamic energies per access, in nanojoules.
	ReadEnergyNJ   float64
	WriteEnergyNJ  float64
	SearchEnergyNJ float64
	// AccessTimeNS and CycleTimeNS are the modeled timings.
	AccessTimeNS float64
	CycleTimeNS  float64
	// LeakageMW is the total leakage power of a bank.
	LeakageMW float64

	// DecoderNS, BitlineNS and SenseAmpNS are the data-side time
	// components, when the report includes them. Calibrate uses them as
	// the attribution shape for the periphery budget.
	DecoderNS  float64
	BitlineNS  float64
	SenseAmpNS float64
}

// Validate checks that the digest describes a usable run: a coherent
// geometry, a positive read energy (the calibration target), and
// finite, non-negative everything else.
func (p *CACTIParams) Validate() error {
	switch {
	case p.SizeBytes <= 0 || p.BlockBytes <= 0:
		return fmt.Errorf("sram: cacti: size/block must be positive, got %d/%d", p.SizeBytes, p.BlockBytes)
	case p.BlockBytes > 1<<20:
		return fmt.Errorf("sram: cacti: block size %d is implausible", p.BlockBytes)
	case p.Assoc < 0:
		return fmt.Errorf("sram: cacti: associativity must be non-negative, got %d", p.Assoc)
	case p.SizeBytes%p.BlockBytes != 0:
		return fmt.Errorf("sram: cacti: size %d not a multiple of block %d", p.SizeBytes, p.BlockBytes)
	case p.Assoc > p.SizeBytes/p.BlockBytes:
		// Also guards the block-group arithmetic below against overflow.
		return fmt.Errorf("sram: cacti: associativity %d exceeds the %d lines of the array",
			p.Assoc, p.SizeBytes/p.BlockBytes)
	case p.Assoc > 0 && p.SizeBytes%(p.BlockBytes*p.Assoc) != 0:
		return fmt.Errorf("sram: cacti: size %d not a multiple of %d-way block group", p.SizeBytes, p.Assoc)
	case p.ReadEnergyNJ <= 0:
		return fmt.Errorf("sram: cacti: read energy must be positive, got %g nJ", p.ReadEnergyNJ)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"read energy", p.ReadEnergyNJ}, {"write energy", p.WriteEnergyNJ},
		{"search energy", p.SearchEnergyNJ}, {"access time", p.AccessTimeNS},
		{"cycle time", p.CycleTimeNS}, {"leakage", p.LeakageMW},
		{"decoder delay", p.DecoderNS}, {"bitline delay", p.BitlineNS},
		{"sense-amp delay", p.SenseAmpNS},
	} {
		if f.v < 0 || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
			return fmt.Errorf("sram: cacti: %s must be finite and non-negative, got %g", f.name, f.v)
		}
	}
	return nil
}

// Ways returns the concrete associativity: Assoc when set-associative,
// every line in one set when fully associative.
func (p *CACTIParams) Ways() int {
	if p.Assoc > 0 {
		return p.Assoc
	}
	return p.SizeBytes / p.BlockBytes
}

// Sets returns the number of sets implied by the organization.
func (p *CACTIParams) Sets() int {
	return p.SizeBytes / (p.BlockBytes * p.Ways())
}

// Geometry returns the run's organization as an array geometry (no
// metadata columns).
func (p *CACTIParams) Geometry() Geometry {
	return Geometry{Sets: p.Sets(), Ways: p.Ways(), LineBytes: p.BlockBytes}
}

// ParseCACTI digests a CACTI text report. Both report dialects are
// understood: the config echo that leads the file ("Cache size : 16384",
// "Technology : 0.022" in µm) and the "Cache Parameters:" section of
// the model output ("Total cache size (bytes): 16384", "Technology
// size (nm): 22"); when both state a field the later section wins by
// overwriting. Unknown lines are skipped — reports drown the few
// fields of interest in dozens of others — but the result must pass
// Validate.
func ParseCACTI(r io.Reader) (CACTIParams, error) {
	var p CACTIParams
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		key, val, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "Cache size", "Total cache size (bytes)":
			parseInt(&p.SizeBytes, val)
		case "Block size", "Block size (bytes)":
			parseInt(&p.BlockBytes, val)
		case "Associativity":
			if val == "fully associative" {
				p.Assoc = 0
			} else {
				parseInt(&p.Assoc, val)
			}
		case "Technology":
			// Config echo states the node in micrometers.
			var um float64
			parseFloat(&um, val)
			p.TechNM = int(math.Round(um * 1000))
		case "Technology size (nm)":
			parseInt(&p.TechNM, val)
		case "Access time (ns)":
			parseFloat(&p.AccessTimeNS, val)
		case "Cycle time (ns)":
			parseFloat(&p.CycleTimeNS, val)
		case "Total dynamic read energy per access (nJ)":
			parseFloat(&p.ReadEnergyNJ, val)
		case "Total dynamic write energy per access (nJ)":
			parseFloat(&p.WriteEnergyNJ, val)
		case "Total dynamic associative search energy per access (nJ)":
			parseFloat(&p.SearchEnergyNJ, val)
		case "Total leakage power of a bank (mW)":
			parseFloat(&p.LeakageMW, val)
		// Time components: the data side is reported first and is the
		// one we attribute from; keep the first occurrence so the tag
		// side's identical labels never clobber it.
		case "Decoder + wordline delay (ns)":
			if p.DecoderNS == 0 {
				parseFloat(&p.DecoderNS, val)
			}
		case "Bitline delay (ns)":
			if p.BitlineNS == 0 {
				parseFloat(&p.BitlineNS, val)
			}
		case "Sense Amplifier delay (ns)":
			if p.SenseAmpNS == 0 {
				parseFloat(&p.SenseAmpNS, val)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return CACTIParams{}, fmt.Errorf("sram: cacti: %w", err)
	}
	if err := p.Validate(); err != nil {
		return CACTIParams{}, err
	}
	return p, nil
}

// parseInt and parseFloat assign only on clean parses, leaving the
// destination untouched otherwise — a malformed line reads as absent,
// and Validate decides whether the run as a whole is usable.
func parseInt(dst *int, s string) {
	if v, err := strconv.Atoi(s); err == nil {
		*dst = v
	}
}

func parseFloat(dst *float64, s string) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		*dst = v
	}
}

// Calibrate fits a Periphery to a CACTI run for the given cell table:
// after the fit, one full-line read access on the run's geometry —
// LookupEnergy plus ReadEnergy of a uniform line — costs exactly the
// run's per-access read energy. The cell side is fixed by the table
// (that is where the CNFET asymmetry lives); what CACTI's total says
// on top of it is the periphery budget, distributed over the three
// Periphery components.
//
// The attribution shape comes from the run's data-side time components
// when present — decoder+wordline delay backs the row decode, bitline
// delay the per-way compare banks, sense-amp delay the column/output
// stage — a crude but monotone proxy: slower stages switch more
// capacitance. Reports without time components fall back to the
// DefaultPeriphery proportions. Either way the total is exact; only
// the split between components is modeled.
func Calibrate(p CACTIParams, tab cnfet.EnergyTable) (Periphery, error) {
	if err := p.Validate(); err != nil {
		return Periphery{}, err
	}
	if err := tab.Validate(); err != nil {
		return Periphery{}, err
	}
	bits := p.BlockBytes * 8
	cell := tab.ReadBits(bits/2, bits)
	target := p.ReadEnergyNJ * 1e6 // nJ -> fJ
	if math.IsInf(target, 0) {
		return Periphery{}, fmt.Errorf("sram: cacti %s: read energy %g nJ is out of range", p.Name, p.ReadEnergyNJ)
	}
	budget := target - cell
	if budget <= 0 {
		return Periphery{}, fmt.Errorf(
			"sram: cacti %s: cell read energy %.0f fJ meets or exceeds the CACTI per-access read %.0f fJ; table %q is too hot for this run",
			p.Name, cell, target, tab.Name)
	}
	ways, lineBytes := float64(p.Ways()), float64(p.BlockBytes)
	def := DefaultPeriphery(tab)
	wDecode := def.DecodeEnergy
	wTag := ways * def.TagCompareEnergy
	wCol := lineBytes * def.ColumnEnergy
	if p.DecoderNS > 0 || p.BitlineNS > 0 || p.SenseAmpNS > 0 {
		wDecode, wTag, wCol = p.DecoderNS, p.BitlineNS, p.SenseAmpNS
	}
	scale := budget / (wDecode + wTag + wCol)
	return Periphery{
		DecodeEnergy:     wDecode * scale,
		TagCompareEnergy: wTag * scale / ways,
		ColumnEnergy:     wCol * scale / lineBytes,
	}, nil
}

//go:embed testdata/cacti
var cactiFS embed.FS

const cactiDir = "testdata/cacti"

// CACTIRunNames returns the sorted names of the embedded CACTI runs.
// Each name doubles as a cnfet device preset calibrated against it.
func CACTIRunNames() []string {
	ents, err := cactiFS.ReadDir(cactiDir)
	if err != nil {
		// The directory is embedded at compile time; it cannot be absent.
		panic(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, strings.TrimSuffix(e.Name(), ".txt"))
	}
	sort.Strings(names)
	return names
}

// IsCACTITable reports whether an embedded CACTI run backs the named
// energy table — the cacti-* device presets share their run's name.
func IsCACTITable(name string) bool {
	if !strings.HasPrefix(name, "cacti-") {
		return false
	}
	_, err := cactiFS.ReadFile(path.Join(cactiDir, name+".txt"))
	return err == nil
}

// CACTIRun parses the named embedded run.
func CACTIRun(name string) (CACTIParams, error) {
	data, err := cactiFS.ReadFile(path.Join(cactiDir, name+".txt"))
	if err != nil {
		return CACTIParams{}, fmt.Errorf("sram: unknown cacti run %q (have %v)", name, CACTIRunNames())
	}
	p, err := ParseCACTI(bytes.NewReader(data))
	if err != nil {
		return CACTIParams{}, fmt.Errorf("sram: cacti run %q: %w", name, err)
	}
	p.Name = name
	return p, nil
}

// CalibratedPeriphery parses the named embedded run and fits the
// periphery for the given cell table — the one-call path the run layer
// uses for cacti-* devices.
func CalibratedPeriphery(name string, tab cnfet.EnergyTable) (Periphery, error) {
	p, err := CACTIRun(name)
	if err != nil {
		return Periphery{}, err
	}
	return Calibrate(p, tab)
}
