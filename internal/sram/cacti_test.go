package sram

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cnfet"
)

// The golden pins below are read straight off the embedded CACTI
// reports (testdata/cacti/*.txt, verbatim CACTI output). If a pin
// breaks, either the parser regressed or a report was edited — both
// invalidate every cacti-* device preset calibrated against it.

func TestCACTIRunGoldens(t *testing.T) {
	goldens := map[string]CACTIParams{
		"cacti-16k-22nm": {
			Name: "cacti-16k-22nm", SizeBytes: 16384, BlockBytes: 64, Assoc: 0, TechNM: 22,
			ReadEnergyNJ: 0.0174358, WriteEnergyNJ: 0.0255604, SearchEnergyNJ: 0.0224624,
			AccessTimeNS: 0.399362, CycleTimeNS: 0.657668, LeakageMW: 11.0568,
		},
		"cacti-16k-32nm": {
			Name: "cacti-16k-32nm", SizeBytes: 16384, BlockBytes: 64, Assoc: 4, TechNM: 32,
			ReadEnergyNJ: 0.00701711,
			AccessTimeNS: 0.28986, CycleTimeNS: 0.28137, LeakageMW: 6.1861,
			DecoderNS: 0.142939, BitlineNS: 0.108542, SenseAmpNS: 0.00257713,
		},
		"cacti-64k-22nm": {
			Name: "cacti-64k-22nm", SizeBytes: 65536, BlockBytes: 64, Assoc: 4, TechNM: 22,
			ReadEnergyNJ: 0.0452934, WriteEnergyNJ: 0.0525483,
			AccessTimeNS: 0.464286, CycleTimeNS: 0.464059, LeakageMW: 22.5863,
		},
	}
	names := CACTIRunNames()
	if len(names) != len(goldens) {
		t.Fatalf("embedded runs %v, want %d", names, len(goldens))
	}
	for _, name := range names {
		want, ok := goldens[name]
		if !ok {
			t.Errorf("unexpected embedded run %q", name)
			continue
		}
		got, err := CACTIRun(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestCACTIGeometry(t *testing.T) {
	for _, tc := range []struct {
		name             string
		sets, ways, line int
	}{
		// 16k-22nm is fully associative: one set of 256 lines.
		{"cacti-16k-22nm", 1, 256, 64},
		{"cacti-16k-32nm", 64, 4, 64},
		{"cacti-64k-22nm", 256, 4, 64},
	} {
		p, err := CACTIRun(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		g := p.Geometry()
		if g.Sets != tc.sets || g.Ways != tc.ways || g.LineBytes != tc.line {
			t.Errorf("%s: geometry %+v, want %d x %d x %dB", tc.name, g, tc.sets, tc.ways, tc.line)
		}
	}
}

// TestCalibrateExact pins the calibration contract: against its paired
// device preset, every embedded run calibrates so that one full set
// lookup plus a uniform full-line read costs exactly the run's
// per-access read energy.
func TestCalibrateExact(t *testing.T) {
	for _, name := range CACTIRunNames() {
		p, err := CACTIRun(name)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := cnfet.PresetByName(name)
		if err != nil {
			t.Fatalf("%s: no paired device preset: %v", name, err)
		}
		tab := cnfet.MustTable(dev)
		per, err := Calibrate(p, tab)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := per.Validate(); err != nil {
			t.Fatalf("%s: fitted periphery invalid: %v", name, err)
		}
		bits := p.BlockBytes * 8
		full := per.DecodeEnergy + float64(p.Ways())*per.TagCompareEnergy +
			tab.ReadBits(bits/2, bits) + float64(p.BlockBytes)*per.ColumnEnergy
		target := p.ReadEnergyNJ * 1e6
		if d := math.Abs(full-target) / target; d > 1e-9 {
			t.Errorf("%s: calibrated full-line read %g fJ, CACTI says %g fJ (rel err %g)", name, full, target, d)
		}
		if per.DecodeEnergy <= 0 || per.TagCompareEnergy <= 0 || per.ColumnEnergy <= 0 {
			t.Errorf("%s: degenerate component in %+v", name, per)
		}
	}
}

// TestCalibrateShape checks the attribution shape: with time components
// present the budget splits in their proportions; without them the
// DefaultPeriphery proportions carry over.
func TestCalibrateShape(t *testing.T) {
	p, err := CACTIRun("cacti-16k-32nm")
	if err != nil {
		t.Fatal(err)
	}
	tab := cnfet.MustTable(mustPreset(t, "cacti-16k-32nm"))
	per, err := Calibrate(p, tab)
	if err != nil {
		t.Fatal(err)
	}
	// decode : tag-bank : column budget ratio == decoder : bitline : senseamp.
	tagBank := float64(p.Ways()) * per.TagCompareEnergy
	colBank := float64(p.BlockBytes) * per.ColumnEnergy
	if r, want := per.DecodeEnergy/tagBank, p.DecoderNS/p.BitlineNS; math.Abs(r-want)/want > 1e-9 {
		t.Errorf("decode/tag ratio %g, want the delay ratio %g", r, want)
	}
	if r, want := per.DecodeEnergy/colBank, p.DecoderNS/p.SenseAmpNS; math.Abs(r-want)/want > 1e-9 {
		t.Errorf("decode/column ratio %g, want the delay ratio %g", r, want)
	}

	// No time components: the fallback shape is DefaultPeriphery's.
	p22, err := CACTIRun("cacti-64k-22nm")
	if err != nil {
		t.Fatal(err)
	}
	tab22 := cnfet.MustTable(mustPreset(t, "cacti-64k-22nm"))
	per22, err := Calibrate(p22, tab22)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultPeriphery(tab22)
	if r, want := per22.DecodeEnergy/per22.TagCompareEnergy, def.DecodeEnergy/def.TagCompareEnergy; math.Abs(r-want)/want > 1e-9 {
		t.Errorf("fallback decode/tag ratio %g, want DefaultPeriphery's %g", r, want)
	}
}

// TestCalibrateTooHot: a cell table whose full-line read alone exceeds
// the CACTI target must be refused with a diagnosis, not fitted to a
// negative periphery.
func TestCalibrateTooHot(t *testing.T) {
	p, err := CACTIRun("cacti-16k-32nm") // target 7017 fJ
	if err != nil {
		t.Fatal(err)
	}
	tab := cnfet.MustTable(cnfet.CNFET32()) // unscaled: cell read alone is ~13234 fJ
	if _, err := Calibrate(p, tab); err == nil || !strings.Contains(err.Error(), "too hot") {
		t.Fatalf("Calibrate with an over-hot table: err = %v, want a too-hot diagnosis", err)
	}
}

func TestParseCACTIDialects(t *testing.T) {
	echo := "Cache size                    : 8192\n" +
		"Block size                    : 32\n" +
		"Associativity                 : 2\n" +
		"Technology                    : 0.022\n" +
		"Total dynamic read energy per access (nJ): 0.01\n"
	p, err := ParseCACTI(strings.NewReader(echo))
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeBytes != 8192 || p.BlockBytes != 32 || p.Assoc != 2 || p.TechNM != 22 {
		t.Errorf("config-echo dialect parsed %+v", p)
	}

	// The model-output section overwrites the echo when both are present.
	both := echo +
		"    Total cache size (bytes): 16384\n" +
		"    Associativity: fully associative\n" +
		"    Block size (bytes): 64\n" +
		"    Technology size (nm): 32\n"
	p, err = ParseCACTI(strings.NewReader(both))
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeBytes != 16384 || p.BlockBytes != 64 || p.Assoc != 0 || p.TechNM != 32 {
		t.Errorf("model-output dialect should win: %+v", p)
	}

	// The tag side repeats the time-component labels; the data side
	// (first occurrence) must be kept.
	timed := echo +
		"Time Components:\n" +
		"  Decoder + wordline delay (ns): 0.1\n" +
		"  Bitline delay (ns): 0.2\n" +
		"  Decoder + wordline delay (ns): 0.9\n" +
		"  Bitline delay (ns): 0.9\n"
	p, err = ParseCACTI(strings.NewReader(timed))
	if err != nil {
		t.Fatal(err)
	}
	if p.DecoderNS != 0.1 || p.BitlineNS != 0.2 {
		t.Errorf("tag-side time components clobbered the data side: %+v", p)
	}

	// A report without a read energy is not a usable run.
	if _, err := ParseCACTI(strings.NewReader("Cache size : 8192\nBlock size : 32\n")); err == nil {
		t.Error("report without read energy should be rejected")
	}
}

func TestCACTIRunRegistry(t *testing.T) {
	for _, name := range CACTIRunNames() {
		if !IsCACTITable(name) {
			t.Errorf("IsCACTITable(%q) = false for an embedded run", name)
		}
	}
	for _, name := range []string{"cacti-1k-7nm", "cnfet-32", ""} {
		if IsCACTITable(name) {
			t.Errorf("IsCACTITable(%q) = true", name)
		}
	}
	if _, err := CACTIRun("cacti-1k-7nm"); err == nil || !strings.Contains(err.Error(), "unknown cacti run") {
		t.Errorf("unknown run: err = %v", err)
	}
	if _, err := CalibratedPeriphery("cacti-1k-7nm", cnfet.MustTable(cnfet.CNFET32())); err == nil {
		t.Error("CalibratedPeriphery should propagate the unknown-run error")
	}
}

func mustPreset(t *testing.T, name string) cnfet.Device {
	t.Helper()
	d, err := cnfet.PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
