package sram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cnfet"
)

func testArray(t *testing.T, metaBits int) *Array {
	t.Helper()
	g := Geometry{Sets: 64, Ways: 8, LineBytes: 64, MetaBitsPerLine: metaBits}
	tab := cnfet.MustTable(cnfet.CNFET32())
	a, err := NewArray(g, tab, DefaultPeriphery(tab))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryDerived(t *testing.T) {
	g := Geometry{Sets: 64, Ways: 8, LineBytes: 64}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Lines(); got != 512 {
		t.Errorf("Lines = %d, want 512", got)
	}
	if got := g.CapacityBytes(); got != 32*1024 {
		t.Errorf("Capacity = %d, want 32768", got)
	}
	if got := g.DataBitsPerLine(); got != 512 {
		t.Errorf("DataBitsPerLine = %d, want 512", got)
	}
	if got := g.IndexBits(); got != 6 {
		t.Errorf("IndexBits = %d, want 6", got)
	}
	if got := g.OffsetBits(); got != 6 {
		t.Errorf("OffsetBits = %d, want 6", got)
	}
	if got := g.TagBits(32); got != 32-6-6 {
		t.Errorf("TagBits(32) = %d, want 20", got)
	}
	if got := g.TagBits(4); got != 0 {
		t.Errorf("TagBits(4) = %d, want clamped 0", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
	}{
		{"zero sets", Geometry{Sets: 0, Ways: 1, LineBytes: 64}},
		{"zero ways", Geometry{Sets: 64, Ways: 0, LineBytes: 64}},
		{"zero line", Geometry{Sets: 64, Ways: 1, LineBytes: 0}},
		{"non-pow2 sets", Geometry{Sets: 48, Ways: 1, LineBytes: 64}},
		{"non-pow2 line", Geometry{Sets: 64, Ways: 1, LineBytes: 48}},
		{"negative meta", Geometry{Sets: 64, Ways: 1, LineBytes: 64, MetaBitsPerLine: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
	// Non-power-of-two ways are legal (victim caches etc).
	ok := Geometry{Sets: 64, Ways: 6, LineBytes: 64}
	if err := ok.Validate(); err != nil {
		t.Errorf("6-way geometry should validate: %v", err)
	}
}

func TestNewArrayRejectsBadInputs(t *testing.T) {
	tab := cnfet.MustTable(cnfet.CNFET32())
	if _, err := NewArray(Geometry{}, tab, Periphery{}); err == nil {
		t.Error("NewArray with invalid geometry should fail")
	}
	g := Geometry{Sets: 4, Ways: 1, LineBytes: 64}
	if _, err := NewArray(g, cnfet.EnergyTable{}, Periphery{}); err == nil {
		t.Error("NewArray with invalid table should fail")
	}
	if _, err := NewArray(g, tab, Periphery{DecodeEnergy: -1}); err == nil {
		t.Error("NewArray with negative periphery should fail")
	}
}

func TestLookupEnergyScalesWithWays(t *testing.T) {
	tab := cnfet.MustTable(cnfet.CNFET32())
	p := DefaultPeriphery(tab)
	mk := func(ways int) *Array {
		a, err := NewArray(Geometry{Sets: 64, Ways: ways, LineBytes: 64}, tab, p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	e1, e8 := mk(1).LookupEnergy(), mk(8).LookupEnergy()
	want := e1 + 7*p.TagCompareEnergy
	if math.Abs(e8-want) > 1e-9 {
		t.Errorf("8-way lookup = %g, want %g", e8, want)
	}
}

func TestReadWriteEnergyMonotoneInOnes(t *testing.T) {
	a := testArray(t, 0)
	f := func(raw uint16) bool {
		ones := int(raw % 512)
		return a.ReadEnergy(ones+1, 64) < a.ReadEnergy(ones, 64) &&
			a.WriteEnergy(ones+1, 64) > a.WriteEnergy(ones, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadEnergyComposition(t *testing.T) {
	a := testArray(t, 0)
	ones, n := 100, 64
	want := a.Cells.ReadBits(ones, n*8) + float64(n)*a.Perif.ColumnEnergy
	if got := a.ReadEnergy(ones, n); math.Abs(got-want) > 1e-9 {
		t.Errorf("ReadEnergy = %g, want %g", got, want)
	}
	wantW := a.Cells.WriteBits(ones, n*8) + float64(n)*a.Perif.ColumnEnergy
	if got := a.WriteEnergy(ones, n); math.Abs(got-wantW) > 1e-9 {
		t.Errorf("WriteEnergy = %g, want %g", got, wantW)
	}
}

func TestMetaEnergyExcludesColumnPeriphery(t *testing.T) {
	a := testArray(t, 12)
	if got, want := a.ReadMetaEnergy(3, 12), a.Cells.ReadBits(3, 12); math.Abs(got-want) > 1e-9 {
		t.Errorf("ReadMetaEnergy = %g, want pure cell energy %g", got, want)
	}
	if got, want := a.WriteMetaEnergy(3, 12), a.Cells.WriteBits(3, 12); math.Abs(got-want) > 1e-9 {
		t.Errorf("WriteMetaEnergy = %g, want pure cell energy %g", got, want)
	}
}

func TestPeripheryFractionIsMinor(t *testing.T) {
	a := testArray(t, 0)
	frac := a.PeripheryFraction()
	if frac <= 0 || frac >= 0.3 {
		t.Errorf("periphery fraction = %.3f, want a realistic minor share in (0, 0.3)", frac)
	}
}

func TestDefaultPeripheryNonNegative(t *testing.T) {
	for name, d := range map[string]cnfet.Device{"cnfet": cnfet.CNFET32(), "cmos": cnfet.CMOS32()} {
		p := DefaultPeriphery(cnfet.MustTable(d))
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.DecodeEnergy <= 0 || p.TagCompareEnergy <= 0 || p.ColumnEnergy <= 0 {
			t.Errorf("%s: default periphery should be strictly positive: %+v", name, p)
		}
	}
}

func TestMetadataBits(t *testing.T) {
	cases := []struct {
		window, partitions int
		want               int
	}{
		{15, 1, 9},   // 2*ceil(log2(16)) + 1 = 8+1
		{15, 8, 16},  // 8 + 8
		{31, 8, 18},  // 2*5 + 8
		{1, 1, 3},    // 2*1 + 1
		{3, 4, 8},    // 2*2 + 4
		{63, 16, 28}, // 2*6 + 16
	}
	for _, tc := range cases {
		got, err := MetadataBits(tc.window, tc.partitions)
		if err != nil {
			t.Errorf("MetadataBits(%d,%d) error: %v", tc.window, tc.partitions, err)
			continue
		}
		if got != tc.want {
			t.Errorf("MetadataBits(%d,%d) = %d, want %d", tc.window, tc.partitions, got, tc.want)
		}
	}
	if _, err := MetadataBits(0, 1); err == nil {
		t.Error("MetadataBits(0,1) should fail")
	}
	if _, err := MetadataBits(15, 0); err == nil {
		t.Error("MetadataBits(15,0) should fail")
	}
}

func TestMetadataBitsMonotone(t *testing.T) {
	f := func(wRaw, kRaw uint8) bool {
		w := int(wRaw%62) + 1
		k := int(kRaw%31) + 1
		a, err1 := MetadataBits(w, k)
		b, err2 := MetadataBits(w+1, k+1)
		return err1 == nil && err2 == nil && b >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
