package mem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	buf := []byte{0xFF, 0xFF, 0xFF}
	m.Read(12345, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Errorf("unwritten memory read %x, want zeros", buf)
	}
	if m.Pages() != 0 {
		t.Error("reading must not instantiate pages")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		m := New()
		addr := uint64(addrRaw)
		m.Write(addr, data)
		got := make([]byte, len(data))
		m.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossPageBoundary(t *testing.T) {
	m := New()
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i + 1)
	}
	addr := uint64(PageBytes - 50) // straddles the first page boundary
	m.Write(addr, data)
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", m.Pages())
	}
	got := make([]byte, 100)
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Error("cross-page round trip failed")
	}
}

func TestPartialOverwrite(t *testing.T) {
	m := New()
	m.Write(0, []byte{1, 2, 3, 4})
	m.Write(1, []byte{9, 9})
	got := make([]byte, 4)
	m.Read(0, got)
	if !bytes.Equal(got, []byte{1, 9, 9, 4}) {
		t.Errorf("overwrite result %v, want [1 9 9 4]", got)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(addrRaw uint16, v uint64) bool {
		m := New()
		addr := uint64(addrRaw)
		m.WriteUint64(addr, v)
		return m.ReadUint64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64LittleEndian(t *testing.T) {
	m := New()
	m.WriteUint64(8, 0x0102030405060708)
	var buf [8]byte
	m.Read(8, buf[:])
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(buf[:], want) {
		t.Errorf("layout %v, want little-endian %v", buf, want)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(addrRaw uint16, v uint32) bool {
		m := New()
		addr := uint64(addrRaw)
		m.WriteUint32(addr, v)
		return m.ReadUint32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64AcrossPageBoundary(t *testing.T) {
	m := New()
	addr := uint64(PageBytes - 4)
	m.WriteUint64(addr, 0xDEADBEEFCAFEF00D)
	if got := m.ReadUint64(addr); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("cross-page u64 = %#x", got)
	}
}

func TestCountersAndReset(t *testing.T) {
	m := New()
	m.Write(0, []byte{1})
	m.Read(0, make([]byte, 1))
	m.Read(0, make([]byte, 1))
	r, w := m.AccessCounts()
	if r != 2 || w != 1 {
		t.Errorf("counts = %d/%d, want 2 reads 1 write", r, w)
	}
	m.Reset()
	r, w = m.AccessCounts()
	if r != 0 || w != 0 || m.Pages() != 0 {
		t.Error("Reset should clear everything")
	}
	buf := []byte{0xAB}
	m.Read(0, buf)
	if buf[0] != 0 {
		t.Error("data should be gone after Reset")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	m.Write(0, []byte{1})
	m.Write(10*PageBytes, []byte{1})
	if got := m.Footprint(); got != 2*PageBytes {
		t.Errorf("Footprint = %d, want %d", got, 2*PageBytes)
	}
}

func TestStringMentionsPages(t *testing.T) {
	m := New()
	m.Write(0, []byte{1})
	if s := m.String(); !strings.Contains(s, "pages=1") {
		t.Errorf("String = %q", s)
	}
}
