// Package mem provides the sparse backing-store image behind the cache
// hierarchy. Encoding energy depends on the actual bit content of cache
// lines, so the simulator cannot work from address-only traces: every
// fill must produce real bytes. Memory keeps a page-granular sparse image
// that workload generators pre-load and stores write through to on
// eviction.
package mem

import (
	"fmt"
)

// PageBytes is the granularity of the sparse image. 4 KiB matches a
// typical OS page and keeps the map small for clustered working sets.
const PageBytes = 4096

// Memory is a sparse byte-addressable image. Unwritten bytes read as
// zero, matching freshly mapped memory. Memory is not safe for concurrent
// mutation.
type Memory struct {
	pages map[uint64][]byte

	reads  uint64
	writes uint64
}

// New returns an empty memory image.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64, create bool) ([]byte, uint64) {
	pn := addr / PageBytes
	p, ok := m.pages[pn]
	if !ok && create {
		p = make([]byte, PageBytes)
		m.pages[pn] = p
	}
	return p, addr % PageBytes
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	m.reads++
	for len(dst) > 0 {
		p, off := m.page(addr, false)
		n := PageBytes - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	m.writes++
	for len(src) > 0 {
		p, off := m.page(addr, true)
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadUint64 reads a little-endian 64-bit word at addr.
func (m *Memory) ReadUint64(addr uint64) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// WriteUint64 writes a little-endian 64-bit word at addr.
func (m *Memory) WriteUint64(addr uint64, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	m.Write(addr, buf[:])
}

// ReadUint32 reads a little-endian 32-bit word at addr.
func (m *Memory) ReadUint32(addr uint64) uint32 {
	var buf [4]byte
	m.Read(addr, buf[:])
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
}

// WriteUint32 writes a little-endian 32-bit word at addr.
func (m *Memory) WriteUint32(addr uint64, v uint32) {
	m.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// Pages returns the number of instantiated pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint returns the instantiated size in bytes.
func (m *Memory) Footprint() int { return len(m.pages) * PageBytes }

// AccessCounts returns the number of Read and Write calls served.
func (m *Memory) AccessCounts() (reads, writes uint64) { return m.reads, m.writes }

// Reset drops all contents and counters.
func (m *Memory) Reset() {
	m.pages = make(map[uint64][]byte)
	m.reads, m.writes = 0, 0
}

// String summarizes the image.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{pages=%d footprint=%dKiB reads=%d writes=%d}",
		m.Pages(), m.Footprint()/1024, m.reads, m.writes)
}
