# Build/test entry points for the CNT-Cache reproduction.
#
#   make tier1   fast gate: build + full unit tests
#   make tier2   deep gate: vet, race-enabled tests (covers the parallel
#                determinism test), and a cntbench -quick end-to-end smoke
#   make results regenerate results/ with the full (non-quick) sweeps

GO ?= go

.PHONY: tier1 tier2 results bench

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/cntbench -quick -out $$(mktemp -d cntbench-smoke.XXXXXX -p $${TMPDIR:-/tmp}) >/dev/null

results:
	$(GO) run ./cmd/cntbench -out results

bench:
	$(GO) test -short -bench=. -benchmem ./...
