# Build/test entry points for the CNT-Cache reproduction.
#
#   make tier1   fast gate: build + full unit tests
#   make tier2   deep gate: vet, race-enabled tests (covers the parallel
#                determinism test), and a cntbench -quick end-to-end smoke
#   make check   the differential/metamorphic harness alone (internal/check):
#                predictor grid vs oracle, encoding invariants, energy
#                conservation, serial-vs-parallel determinism
#   make lint    formatting and static-analysis gate: gofmt -l must be
#                empty and go vet must pass
#   make fuzz    run every native fuzz target for FUZZTIME (default 30s)
#   make fault   race-enabled fault-injection/resilience suite (device
#                faults, session salvage, crash-safe artifacts) plus a
#                quick E14 graceful-degradation batch
#   make obs-check  trace the E3 suite kernels with cntsim -trace-out
#                and -span-out, verify each event trace reconciles
#                through cntstat and each span trace through
#                cntstat -spans
#   make geom-check  geometry/energy gate: CACTI parse+calibration
#                goldens, the per-level energy-conservation audits, and
#                a quick E15 regeneration to a temp dir
#   make results regenerate results/ with the full (non-quick) sweeps
#   make bench-json  quick E3-suite batch emitting BENCH_E3.json plus a
#                fresh replay-throughput record BENCH_REPLAY.json — the
#                machine-readable records CI archives per commit. Run it
#                (on quiet hardware) and commit BENCH_REPLAY.json to
#                refresh the throughput reference.
#   make bench-replay-check  measure replay throughput and fail if it
#                regressed more than 20% vs the committed
#                BENCH_REPLAY.json (the CI bench job's gate)
#   make chaos-check  crash-recovery gate: race-enabled journal,
#                recovery, deadline, drain and chaos-injection suites,
#                then scripts/chaos_check.sh — a real race-enabled cntd
#                SIGKILLed mid-compare with seeded chaos (CHAOS_SEED,
#                default 42) and restarted over the same state dir,
#                asserting both journaled jobs converge to reports
#                byte-identical to cntsim's, deadlines validate, a
#                clean SIGTERM empties the journal, and cntstat -jobs
#                audits the final state dir
#   make serve-check  serving gate: race-enabled internal/server +
#                cmd/cntd + cmd/cntbench suites, then the live
#                scripts/serve_check.sh end-to-end (boot cntd on a
#                random port with tracing and the access log on,
#                submit a compare over HTTP, diff the report against
#                cntsim's stdout, scrape /metrics in Prometheus mode,
#                SIGTERM → exit 0, then render the committed span
#                trace with cntstat -spans)

GO ?= go
FUZZTIME ?= 30s

.PHONY: tier1 tier2 lint check fuzz fault obs-check geom-check results bench bench-json bench-replay-check serve-check chaos-check

tier1:
	$(GO) build ./...
	$(GO) test ./...

lint:
	@fmt=$$(gofmt -l .); \
	if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; \
	fi
	$(GO) vet ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/cntbench -quick -out $$(mktemp -d cntbench-smoke.XXXXXX -p $${TMPDIR:-/tmp}) >/dev/null

check:
	$(GO) test -v -run 'Test' ./internal/check/

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceText$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzTraceBinary$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzAsm$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzConfigJSON$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzEventsJSONL$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzFaultConfig$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzTraceparent$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzCACTIParams$$' -fuzztime $(FUZZTIME) ./internal/check/
	$(GO) test -run '^$$' -fuzz '^FuzzStatusDoc$$' -fuzztime $(FUZZTIME) ./internal/server/

# The resilience gate: the fault and atomicio packages in full, the
# fault/salvage/interrupt tests across the run engine and CLIs, and a
# quick E14 batch proving the graceful-degradation sweep stays
# deterministic end to end. Everything race-enabled.
fault:
	$(GO) test -race ./internal/fault/ ./internal/atomicio/
	$(GO) test -race -run 'Fault|Salvage|Retry|Partial|Cancel|Interrupt|Transient|Panic|Atomic' \
		./internal/core/ ./internal/run/ ./internal/experiments/ \
		./internal/check/ ./internal/config/ ./cmd/cntsim/ ./cmd/cntbench/
	$(GO) run ./cmd/cntbench -quick -only E14 \
		-out $$(mktemp -d cntbench-fault.XXXXXX -p $${TMPDIR:-/tmp}) >/dev/null

# Trace every kernel the E3 suite runs and push each trace through
# cntstat, whose reconciliation gate fails on any divergence between the
# per-event energy deltas and the run's final breakdown. Each run also
# records a span trace, audited by cntstat -spans (the span-nesting
# reconciliation of internal/check.ReconcileSpans).
OBS_KERNELS = mm fir bfs hashjoin sort stream stack list spmv hist
obs-check:
	@dir=$$(mktemp -d cnt-obs.XXXXXX -p $${TMPDIR:-/tmp}); \
	trap 'rm -rf "$$dir"' EXIT; \
	for k in $(OBS_KERNELS); do \
		echo "obs-check: $$k"; \
		$(GO) run ./cmd/cntsim -workload $$k -trace-out "$$dir/$$k.jsonl" -span-out "$$dir/$$k.spans.jsonl" >/dev/null || exit 1; \
		$(GO) run ./cmd/cntstat "$$dir/$$k.jsonl" >/dev/null || exit 1; \
		$(GO) run ./cmd/cntstat -spans "$$dir/$$k.spans.jsonl" >/dev/null || exit 1; \
	done

# The geometry/energy gate: the CACTI parse+calibration goldens and the
# per-level energy-conservation audits (internal/sram + the hierarchy
# tests of internal/check), then a quick E15 regeneration to a temp dir
# proving the size x associativity x levels sweep still runs end to end
# on every cacti-* device.
geom-check:
	$(GO) test -run 'CACTI|Calibrate|Hierarchy|AuditMultiLevel|AuditEncoded' \
		./internal/sram/ ./internal/check/ ./internal/cache/ ./internal/run/
	$(GO) run ./cmd/cntbench -quick -only E15 \
		-out $$(mktemp -d cntbench-geom.XXXXXX -p $${TMPDIR:-/tmp}) >/dev/null

results:
	$(GO) run ./cmd/cntbench -out results

bench:
	$(GO) test -short -bench=. -benchmem ./...

bench-json:
	$(GO) run ./cmd/cntbench -quick -only E3 -json BENCH_E3.json \
		-out $$(mktemp -d cntbench-json.XXXXXX -p $${TMPDIR:-/tmp}) >/dev/null
	$(GO) run ./cmd/cntbench -replay -quick -replay-json BENCH_REPLAY.json >/dev/null
	@echo "wrote BENCH_E3.json BENCH_REPLAY.json"

bench-replay-check:
	$(GO) run ./cmd/cntbench -replay -quick -replay-baseline BENCH_REPLAY.json

# The serving gate: every HTTP seam under -race, then a live daemon
# driven over real sockets and drained with a real SIGTERM.
serve-check:
	$(GO) test -race ./internal/server/ ./cmd/cntd/ ./cmd/cntbench/
	./scripts/serve_check.sh

# The crash-recovery gate: the durability suites under -race (journal
# round-trips, boot recovery, deadline taxonomy, drain edge cases,
# chaos injection, the in-process kill -9 end-to-end), then a real
# daemon SIGKILLed and recovered by scripts/chaos_check.sh.
chaos-check:
	$(GO) test -race ./internal/chaos/ ./internal/atomicio/
	$(GO) test -race -run 'Journal|Recover|Boot|Deadline|Drain|Chaos|Kill9|StatusDoc|EventsClient|Healthz|Admission|Jobs' \
		./internal/server/ ./cmd/cntd/ ./cmd/cntstat/
	./scripts/chaos_check.sh
