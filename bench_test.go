package repro_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchConfig trims the sweeps under -short so `go test -short -bench=.`
// stays fast; a plain -bench=. run regenerates the full tables.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	if testing.Short() {
		cfg.Quick = true
	}
	return cfg
}

// runExperiment executes one registered experiment per benchmark
// iteration and surfaces its headline number as a custom metric.
func runExperiment(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	var tab *experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err = exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if metric != nil {
		name, v := metric(tab)
		b.ReportMetric(v, name)
	}
}

// parsePct turns a "+12.3%" cell into 12.3.
func parsePct(cell string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	return v
}

// lastRowPct fetches column col of the last row as a percentage metric.
func lastRowPct(col string) func(*experiments.Table) (string, float64) {
	return func(t *experiments.Table) (string, float64) {
		cell, err := t.Cell(len(t.Rows)-1, col)
		if err != nil {
			return "err", 0
		}
		return "saving_%", parsePct(cell)
	}
}

// BenchmarkExpE1EnergyTable regenerates Table 1 (the per-bit CNFET cell
// energies) and reports the write asymmetry.
func BenchmarkExpE1EnergyTable(b *testing.B) {
	runExperiment(b, "E1", func(t *experiments.Table) (string, float64) {
		for i, row := range t.Rows {
			if row[0] == "cnfet-32" {
				cell, _ := t.Cell(i, "wr1/wr0")
				v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
				return "wr1_over_wr0", v
			}
		}
		return "wr1_over_wr0", 0
	})
}

// BenchmarkExpE2Config regenerates the configuration table.
func BenchmarkExpE2Config(b *testing.B) { runExperiment(b, "E2", nil) }

// BenchmarkExpE3DCacheEnergy regenerates the headline figure: per-
// benchmark D-cache savings. The reported metric is the suite-average
// CNT-Cache saving, the paper's 22.2% claim.
func BenchmarkExpE3DCacheEnergy(b *testing.B) {
	runExperiment(b, "E3", lastRowPct("cnt-cache"))
}

// BenchmarkExpE4WindowSweep regenerates the W sweep.
func BenchmarkExpE4WindowSweep(b *testing.B) { runExperiment(b, "E4", nil) }

// BenchmarkExpE5PartitionSweep regenerates the K sweep.
func BenchmarkExpE5PartitionSweep(b *testing.B) { runExperiment(b, "E5", nil) }

// BenchmarkExpE6MixSweep regenerates the read-fraction x density grid.
func BenchmarkExpE6MixSweep(b *testing.B) { runExperiment(b, "E6", nil) }

// BenchmarkExpE7DeltaTSweep regenerates the ΔT hysteresis sweep.
func BenchmarkExpE7DeltaTSweep(b *testing.B) { runExperiment(b, "E7", nil) }

// BenchmarkExpE8Overhead regenerates the overhead accounting table.
func BenchmarkExpE8Overhead(b *testing.B) { runExperiment(b, "E8", nil) }

// BenchmarkExpE9ICache regenerates the I-cache/D-cache comparison on the
// ISA programs and reports the average I-cache saving.
func BenchmarkExpE9ICache(b *testing.B) {
	runExperiment(b, "E9", lastRowPct("I saving"))
}

// BenchmarkExpE10Ablation regenerates the design-choice ablations.
func BenchmarkExpE10Ablation(b *testing.B) { runExperiment(b, "E10", nil) }

// BenchmarkExpE11CMOS regenerates the CNFET-vs-CMOS table.
func BenchmarkExpE11CMOS(b *testing.B) { runExperiment(b, "E11", nil) }

// BenchmarkExpE12Leakage regenerates the leakage-aware accounting table
// and reports the combined (dynamic + leakage) suite-average saving.
func BenchmarkExpE12Leakage(b *testing.B) {
	runExperiment(b, "E12", lastRowPct("combined saving"))
}

// --- micro-benchmarks of the simulator hot path --------------------------

// BenchmarkSimAccessBaseline measures raw simulator throughput without
// encoding machinery.
func BenchmarkSimAccessBaseline(b *testing.B) {
	benchSimAccess(b, core.BaselineOptions())
}

// BenchmarkSimAccessCNTCache measures throughput with the full adaptive
// pipeline (popcounts, predictor, FIFO).
func BenchmarkSimAccessCNTCache(b *testing.B) {
	benchSimAccess(b, core.DefaultOptions())
}

func benchSimAccess(b *testing.B, opts core.Options) {
	inst := workload.Histogram(1)
	cfg := core.SimConfig{Hierarchy: cache.DefaultHierarchyConfig(), DOpts: opts, IOpts: opts}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		rep, err := core.RunInstance(inst, cfg)
		if err != nil {
			b.Fatal(err)
		}
		done += int(rep.DStats.Accesses)
	}
	b.StopTimer()
	b.ReportMetric(float64(done)/b.Elapsed().Seconds()/1e6, "Maccess/s")
}

// BenchmarkWorkloadGeneration measures the kernel generators themselves.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, builder := range workload.Suite() {
		builder := builder
		b.Run(builder.Name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(builder.Build(1).Accesses)
			}
			b.ReportMetric(float64(n), "accesses")
		})
	}
}

// BenchmarkTraceBinaryRoundTrip measures trace serialization throughput.
func BenchmarkTraceBinaryRoundTrip(b *testing.B) {
	inst := workload.Sort(1)
	var sb strings.Builder
	w := trace.NewTextWriter(&sb)
	for _, a := range inst.Accesses[:1000] {
		if err := w.Access(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	payload := sb.String()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs, err := trace.Collect(trace.NewTextReader(strings.NewReader(payload)))
		if err != nil || len(accs) != 1000 {
			b.Fatalf("collect: %d records, err=%v", len(accs), err)
		}
	}
}

// TestBenchmarksSmoke keeps `go test ./...` exercising every experiment
// path even when benchmarks are not requested.
func TestBenchmarksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke")
	}
	cfg := experiments.Config{Seed: 1, Quick: true}
	for _, e := range experiments.Registry() {
		if _, err := e.Run(cfg); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
}

// BenchmarkExpE13Policies regenerates the prediction-policy comparison.
func BenchmarkExpE13Policies(b *testing.B) {
	runExperiment(b, "E13", lastRowPct("avg saving"))
}

// BenchmarkExpE14Faults regenerates the graceful-degradation fault
// sweep; the headline metric is the surviving saving at the highest
// injected fault rate.
func BenchmarkExpE14Faults(b *testing.B) {
	runExperiment(b, "E14", lastRowPct("cnt saving"))
}

// BenchmarkExpE15Geometry regenerates the size x associativity x levels
// sweep with per-level energy and CACTI-calibrated devices; the
// reported metric is the last row's whole-hierarchy saving.
func BenchmarkExpE15Geometry(b *testing.B) {
	runExperiment(b, "E15", lastRowPct("total saving"))
}

// BenchmarkReplayThroughput is the repo's headline performance metric:
// raw accesses/second replaying the full 10-kernel suite through the
// batched path, for the baseline array and the full CNT-Cache pipeline.
// make bench-json snapshots it into BENCH_REPLAY.json and CI gates on
// regressions; docs/PERFORMANCE.md explains how to read and refresh it.
func BenchmarkReplayThroughput(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.BaselineOptions()},
		{"cnt-cache", core.DefaultOptions()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var instances []*workload.Instance
			for _, builder := range workload.Suite() {
				instances = append(instances, builder.Build(1))
			}
			cfg := core.SimConfig{Hierarchy: cache.DefaultHierarchyConfig(), DOpts: tc.opts, IOpts: tc.opts}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				for _, inst := range instances {
					rep, err := core.RunInstance(inst, cfg)
					if err != nil {
						b.Fatal(err)
					}
					done += int(rep.DStats.Accesses + rep.IStats.Accesses)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(done)/b.Elapsed().Seconds()/1e6, "Maccess/s")
		})
	}
}
