// Package repro is a from-scratch Go reproduction of "CNT-Cache: an
// Energy-Efficient Carbon Nanotube Cache with Adaptive Encoding"
// (DATE 2020).
//
// The paper's observation is that CNFET SRAM cells read and write '0' and
// '1' at very different energies (writing '1' costs roughly 10x writing
// '0'); CNT-Cache exploits it by predicting each cache line's read/write
// preference from its access history and re-encoding the stored bits —
// whole-line or per-partition inversion — to match.
//
// The reproduction spans the full stack the evaluation needs:
//
//   - internal/cnfet, internal/sram: device and array energy models;
//   - internal/cache, internal/mem: a data-carrying set-associative cache
//     hierarchy over a sparse memory image;
//   - internal/encoding, internal/predictor, internal/fifo: the adaptive
//     encoder, Algorithm 1's direction predictor, and the deferred-update
//     queues;
//   - internal/core: CNT-Cache itself plus the baseline/static/greedy
//     comparison variants and the simulation driver;
//   - internal/isa, internal/workload, internal/trace: benchmark
//     substrates — a small assembler+VM, nine data-carrying kernels, and
//     archival trace formats;
//   - internal/experiments: the registry that regenerates every table and
//     figure (see DESIGN.md and EXPERIMENTS.md).
//
// The root-level benchmarks (bench_test.go) expose one benchmark per
// experiment; cmd/cntbench writes the same tables to disk.
package repro
