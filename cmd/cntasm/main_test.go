package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrors drives the toolchain through its error surface.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no mode", nil, "one of -list, -run or -asm is required"},
		{"unknown list program", []string{"-list", "nope"}, "unknown program"},
		{"unknown run program", []string{"-run", "nope"}, "unknown program"},
		{"missing asm file", []string{"-asm", "/no/such/prog.s"}, "no/such"},
		{"unparseable flag", []string{"-base", "abc"}, "invalid value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunBadSource checks that assembler diagnostics surface as errors
// in every -asm mode instead of exiting.
func TestRunBadSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(path, []byte("frobnicate r1, r2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{
		{"-asm", path},
		{"-asm", path, "-run-file"},
		{"-asm", path, "-list-file"},
	} {
		var out, errBuf bytes.Buffer
		if err := run(mode, &out, &errBuf); err == nil {
			t.Errorf("run(%v) accepted an unknown mnemonic", mode)
		}
	}
}

// TestListAndRunBundledProgram smoke-tests the two bundled-program modes.
func TestListAndRunBundledProgram(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list", "matmul"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("-list produced no disassembly")
	}

	out.Reset()
	if err := run([]string{"-run", "matmul"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instructions executed", "trace:", "registers:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-run output missing %q:\n%s", want, out.String())
		}
	}
}

// TestAssembleOnlyReportsSymbols checks the assemble-only mode prints
// the size line and the symbol table in sorted order.
func TestAssembleOnlyReportsSymbols(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.s")
	src := "start:\n  addi r1, r0, 7\nloop:\n  addi r1, r1, -1\n  bne r1, r0, loop\n  halt\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-asm", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "assembled") {
		t.Errorf("missing size line:\n%s", out.String())
	}
	li, ls := strings.Index(out.String(), "loop"), strings.Index(out.String(), "start")
	if li < 0 || ls < 0 || li > ls {
		t.Errorf("symbols missing or unsorted:\n%s", out.String())
	}
}
