// Command cntasm is the toolchain driver for the bundled ISA: it
// assembles programs, disassembles them, and runs them on the functional
// VM with a register/memory dump — everything needed to author new
// benchmark kernels for the I-cache experiments.
//
// Usage:
//
//	cntasm -list matmul                 # disassemble a bundled program
//	cntasm -run matmul                  # run it, dump registers and trace mix
//	cntasm -asm prog.s -run-file        # assemble and run your own source
//	cntasm -asm prog.s -list-file       # assemble and disassemble it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	list := flag.String("list", "", "disassemble a bundled program: "+strings.Join(isa.ProgramNames(), ","))
	run := flag.String("run", "", "run a bundled program")
	asmPath := flag.String("asm", "", "assembly source file")
	runFile := flag.Bool("run-file", false, "run the -asm file")
	listFile := flag.Bool("list-file", false, "disassemble the -asm file")
	base := flag.Uint64("base", isa.CodeBase, "load address")
	maxSteps := flag.Uint64("max-steps", isa.DefaultMaxSteps, "instruction budget")
	flag.Parse()

	switch {
	case *list != "":
		src, ok := isa.Programs()[*list]
		if !ok {
			fatal(fmt.Errorf("unknown program %q", *list))
		}
		listing(src, *base)
	case *run != "":
		src, ok := isa.Programs()[*run]
		if !ok {
			fatal(fmt.Errorf("unknown program %q", *run))
		}
		execute(src, *base, *maxSteps)
	case *asmPath != "":
		raw, err := os.ReadFile(*asmPath)
		if err != nil {
			fatal(err)
		}
		switch {
		case *runFile:
			execute(string(raw), *base, *maxSteps)
		case *listFile:
			listing(string(raw), *base)
		default:
			// Assemble-only: report size and symbols.
			prog, err := isa.Assemble(string(raw), *base)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("assembled %d words (%d bytes) at %#x\n", len(prog.Words), prog.Size(), prog.Base)
			for name, addr := range prog.Symbols {
				fmt.Printf("  %-16s %#x\n", name, addr)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listing(src string, base uint64) {
	prog, err := isa.Assemble(src, base)
	if err != nil {
		fatal(err)
	}
	fmt.Print(isa.Disassemble(prog))
}

func execute(src string, base, maxSteps uint64) {
	prog, err := isa.Assemble(src, base)
	if err != nil {
		fatal(err)
	}
	vm, accs, err := isa.RunProgram(src, base, maxSteps)
	if err != nil {
		fatal(err)
	}
	var fetches, reads, writes int
	for _, a := range accs {
		switch a.Op {
		case trace.Fetch:
			fetches++
		case trace.Read:
			reads++
		case trace.Write:
			writes++
		}
	}
	fmt.Printf("program: %d words, %d instructions executed\n", len(prog.Words), vm.Steps())
	fmt.Printf("trace:   F=%d R=%d W=%d\n", fetches, reads, writes)
	fmt.Println("registers:")
	for r := 0; r < 16; r += 4 {
		fmt.Printf("  r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d\n",
			r, vm.Regs[r], r+1, vm.Regs[r+1], r+2, vm.Regs[r+2], r+3, vm.Regs[r+3])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cntasm:", err)
	os.Exit(1)
}
