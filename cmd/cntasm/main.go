// Command cntasm is the toolchain driver for the bundled ISA: it
// assembles programs, disassembles them, and runs them on the functional
// VM with a register/memory dump — everything needed to author new
// benchmark kernels for the I-cache experiments.
//
// Usage:
//
//	cntasm -list matmul                 # disassemble a bundled program
//	cntasm -run matmul                  # run it, dump registers and trace mix
//	cntasm -asm prog.s -run-file        # assemble and run your own source
//	cntasm -asm prog.s -list-file       # assemble and disassemble it
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntasm:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: flag parsing against args,
// listings and dumps to stdout, every failure a returned error.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.String("list", "", "disassemble a bundled program: "+strings.Join(isa.ProgramNames(), ","))
	runName := fs.String("run", "", "run a bundled program")
	asmPath := fs.String("asm", "", "assembly source file")
	runFile := fs.Bool("run-file", false, "run the -asm file")
	listFile := fs.Bool("list-file", false, "disassemble the -asm file")
	base := fs.Uint64("base", isa.CodeBase, "load address")
	maxSteps := fs.Uint64("max-steps", isa.DefaultMaxSteps, "instruction budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list != "":
		src, ok := isa.Programs()[*list]
		if !ok {
			return fmt.Errorf("unknown program %q (have %v)", *list, isa.ProgramNames())
		}
		return listing(stdout, src, *base)
	case *runName != "":
		src, ok := isa.Programs()[*runName]
		if !ok {
			return fmt.Errorf("unknown program %q (have %v)", *runName, isa.ProgramNames())
		}
		return execute(stdout, src, *base, *maxSteps)
	case *asmPath != "":
		raw, err := os.ReadFile(*asmPath)
		if err != nil {
			return err
		}
		switch {
		case *runFile:
			return execute(stdout, string(raw), *base, *maxSteps)
		case *listFile:
			return listing(stdout, string(raw), *base)
		default:
			// Assemble-only: report size and symbols.
			prog, err := isa.Assemble(string(raw), *base)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "assembled %d words (%d bytes) at %#x\n", len(prog.Words), prog.Size(), prog.Base)
			syms := make([]string, 0, len(prog.Symbols))
			for name := range prog.Symbols {
				syms = append(syms, name)
			}
			sort.Strings(syms)
			for _, name := range syms {
				fmt.Fprintf(stdout, "  %-16s %#x\n", name, prog.Symbols[name])
			}
			return nil
		}
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run or -asm is required")
	}
}

func listing(w io.Writer, src string, base uint64) error {
	prog, err := isa.Assemble(src, base)
	if err != nil {
		return err
	}
	fmt.Fprint(w, isa.Disassemble(prog))
	return nil
}

func execute(w io.Writer, src string, base, maxSteps uint64) error {
	prog, err := isa.Assemble(src, base)
	if err != nil {
		return err
	}
	vm, accs, err := isa.RunProgram(src, base, maxSteps)
	if err != nil {
		return err
	}
	var fetches, reads, writes int
	for _, a := range accs {
		switch a.Op {
		case trace.Fetch:
			fetches++
		case trace.Read:
			reads++
		case trace.Write:
			writes++
		}
	}
	fmt.Fprintf(w, "program: %d words, %d instructions executed\n", len(prog.Words), vm.Steps())
	fmt.Fprintf(w, "trace:   F=%d R=%d W=%d\n", fetches, reads, writes)
	fmt.Fprintln(w, "registers:")
	for r := 0; r < 16; r += 4 {
		fmt.Fprintf(w, "  r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d r%-2d=%-12d\n",
			r, vm.Regs[r], r+1, vm.Regs[r+1], r+2, vm.Regs[r+2], r+3, vm.Regs[r+3])
	}
	return nil
}
