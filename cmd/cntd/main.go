// Command cntd is the simulation-as-a-service daemon: a long-lived,
// multi-tenant HTTP server that accepts run/compare specifications —
// the same JSON documents cntsim -config reads — schedules them on a
// bounded worker pool with per-tenant admission control, and serves
// status documents, text reports byte-identical to cntsim's, streamed
// obs events, live metrics, health and pprof.
//
// Usage:
//
//	cntd [-addr :7090] [-workers N] [-queue 64] [-tenant-inflight 8]
//	     [-drain 10s] [-state-dir DIR]
//
// Submit a job:
//
//	curl -X POST http://localhost:7090/v1/runs \
//	  -d '{"mode":"compare","tenant":"alice","spec":{"source":{"kernel":"mm"}}}'
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight HTTP
// requests and running jobs get the -drain grace period to complete
// (queued jobs are cancelled), finished-job artifacts are flushed
// through atomicio, and the process exits 0. See docs/SERVER.md for
// the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntd:", err)
		os.Exit(1)
	}
}

// runCtx is the daemon behind a testable seam: flags parsed from args,
// the listen address announced on stderr, and ctx cancellation playing
// the role of SIGINT/SIGTERM. A clean drain returns nil.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":7090", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrently-running jobs (0 = one per CPU)")
	queue := fs.Int("queue", server.DefaultQueueDepth, "max queued jobs across all tenants (beyond it submissions get 429)")
	tenantInflight := fs.Int("tenant-inflight", server.DefaultTenantInFlight, "max queued+running jobs per tenant (beyond it submissions get 429)")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests and running jobs on shutdown")
	stateDir := fs.String("state-dir", "", "write each finished job's status document here as <id>.json (atomic writes; empty disables)")
	quiet := fs.Bool("quiet", false, "suppress per-job lifecycle log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "cntd: "+format+"\n", a...)
	}
	reg := obs.NewRegistry()
	sched := server.NewScheduler(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		TenantInFlight: *tenantInflight,
		StateDir:       *stateDir,
		Metrics:        reg,
		Logf: func(format string, a ...any) {
			if !*quiet {
				logf(format, a...)
			}
		},
	})
	hs := server.StartHTTP(ln, server.NewHandler(sched, reg))
	logf("listening at http://%s (workers=%d queue=%d tenant-inflight=%d)",
		ln.Addr(), sched.Workers(), *queue, *tenantInflight)

	select {
	case <-ctx.Done():
	case <-hs.Done():
		// The serve loop died on its own — bubble the failure up so the
		// process exits nonzero instead of lingering with no listener.
		sched.Drain(0)
		return fmt.Errorf("http server: %w", hs.Err())
	}

	// Graceful drain: stop the listener, let in-flight requests and
	// running jobs finish inside the grace period, flush artifacts.
	logf("draining (grace %s)", *drain)
	shutErr := hs.Shutdown(*drain)
	sched.Drain(*drain)
	if shutErr != nil {
		logf("shutdown: %v", shutErr)
	}
	logf("drained, exiting")
	return nil
}
