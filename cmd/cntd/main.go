// Command cntd is the simulation-as-a-service daemon: a long-lived,
// multi-tenant HTTP server that accepts run/compare specifications —
// the same JSON documents cntsim -config reads — schedules them on a
// bounded worker pool with per-tenant admission control, and serves
// status documents, text reports byte-identical to cntsim's, streamed
// obs events, live metrics, health and pprof.
//
// Usage:
//
//	cntd [-addr :7090] [-workers N] [-queue 64] [-tenant-inflight 8]
//	     [-drain 10s] [-state-dir DIR] [-span-out FILE]
//	     [-default-deadline 0] [-max-deadline 0] [-recover-runs 3]
//	     [-access-log FILE|-] [-log-json] [-chaos SPEC]
//
// The HTTP surface is always instrumented with per-route/status
// latency histograms (scrape /metrics, JSON or Prometheus text by
// content negotiation). -span-out additionally traces every request
// and every job lifecycle — admission, queue wait, dispatch, retries,
// per-cell simulation, render, artifact flush — into a span JSONL file
// committed atomically at shutdown (inspect with cntstat -spans).
// -access-log writes one structured line per request ("-" = stderr);
// -log-json switches those lines to JSON objects.
//
// Submit a job:
//
//	curl -X POST http://localhost:7090/v1/runs \
//	  -d '{"mode":"compare","tenant":"alice","spec":{"source":{"kernel":"mm"}}}'
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight HTTP
// requests and running jobs get the -drain grace period to complete
// (queued jobs are cancelled), finished-job artifacts are flushed
// through atomicio, and the process exits 0. See docs/SERVER.md for
// the API reference.
//
// With -state-dir the daemon is also crash-safe: every accepted job is
// journaled before the 202 goes out, so after a kill -9 the next boot
// serves finished jobs from their on-disk documents and re-admits the
// rest — jobs that died mid-run re-enter the queue flagged "recovered"
// with at most -recover-runs total starts. Deadlines (deadline_ms on
// POST /v1/runs, bounded by -default-deadline / -max-deadline) span
// queue wait, execution and daemon downtime alike. See
// docs/DURABILITY.md for the journal format and recovery semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntd:", err)
		os.Exit(1)
	}
}

// runCtx is the daemon behind a testable seam: flags parsed from args,
// the listen address announced on stderr, and ctx cancellation playing
// the role of SIGINT/SIGTERM. A clean drain returns nil.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":7090", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrently-running jobs (0 = one per CPU)")
	queue := fs.Int("queue", server.DefaultQueueDepth, "max queued jobs across all tenants (beyond it submissions get 429)")
	tenantInflight := fs.Int("tenant-inflight", server.DefaultTenantInFlight, "max queued+running jobs per tenant (beyond it submissions get 429)")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests and running jobs on shutdown")
	stateDir := fs.String("state-dir", "", "durable state directory: finished jobs land here as <id>.json and accepted jobs are journaled for crash recovery (empty disables)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied to submissions that carry no deadline_ms (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on any job's deadline; longer requests get 400, unbounded ones are clamped (0 = uncapped)")
	recoverRuns := fs.Int("recover-runs", server.DefaultRecoverRuns, "max starts per journaled job across crashes before recovery abandons it as failed")
	chaosSpec := fs.String("chaos", "", `deterministic fault injection, e.g. "seed=42;journal.torn:every=3;worker.delay:delay=2s" (testing only; empty disables)`)
	spanOut := fs.String("span-out", "", "trace HTTP requests and job lifecycles as spans, committed to this JSONL file at shutdown (see cntstat -spans)")
	accessLog := fs.String("access-log", "", `write one structured line per HTTP request to this file ("-" = stderr; empty disables)`)
	logJSON := fs.Bool("log-json", false, "access-log lines as JSON objects instead of text")
	quiet := fs.Bool("quiet", false, "suppress per-job lifecycle log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	inj, err := chaos.Parse(*chaosSpec)
	if err != nil {
		return fmt.Errorf("-chaos: %w", err)
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "cntd: "+format+"\n", a...)
	}

	// Tracing: one tracer shared by the HTTP seam (request spans) and
	// the scheduler (job lifecycle spans), draining into a span JSONL
	// file that commits atomically at shutdown — a crash never leaves a
	// truncated trace where a complete one is expected.
	var (
		tracer   *obs.Tracer
		spanSink *obs.JSONLSink
		spanF    *atomicio.File
	)
	if *spanOut != "" {
		f, err := atomicio.Create(*spanOut)
		if err != nil {
			return err
		}
		spanF = f
		spanSink = obs.NewJSONLSink(f)
		defer spanF.Abort() // no-op once committed
		tracer = obs.NewTracer(spanSink)
	}

	var access *server.AccessLogger
	if *accessLog != "" {
		w := io.Writer(stderr)
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		access = server.NewAccessLogger(w, *logJSON)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}

	reg := obs.NewRegistry()
	sched, err := server.NewScheduler(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		TenantInFlight:  *tenantInflight,
		StateDir:        *stateDir,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		RecoverRuns:     *recoverRuns,
		Chaos:           inj,
		Metrics:         reg,
		Tracer:          tracer,
		Logf: func(format string, a ...any) {
			if !*quiet {
				logf(format, a...)
			}
		},
	})
	if err != nil {
		ln.Close()
		return err
	}
	if inj != nil {
		logf("chaos injection active: %s", inj)
	}
	handler := server.Instrument(server.NewHandler(sched, reg), server.InstrumentOptions{
		Tracer:  tracer,
		Metrics: reg,
		Access:  access,
	})
	hs := server.StartHTTP(ln, handler)
	logf("listening at http://%s (workers=%d queue=%d tenant-inflight=%d)",
		ln.Addr(), sched.Workers(), *queue, *tenantInflight)

	select {
	case <-ctx.Done():
	case <-hs.Done():
		// The serve loop died on its own — bubble the failure up so the
		// process exits nonzero instead of lingering with no listener.
		sched.Drain(0)
		return fmt.Errorf("http server: %w", hs.Err())
	}

	// Graceful drain: stop the listener, let in-flight requests and
	// running jobs finish inside the grace period, flush artifacts.
	logf("draining (grace %s)", *drain)
	shutErr := hs.Shutdown(*drain)
	sched.Drain(*drain)
	if shutErr != nil {
		logf("shutdown: %v", shutErr)
	}
	// Every job and request span has ended by now; commit the span
	// trace. A write failure is a real error — the artifact was asked
	// for — and exits nonzero.
	if spanSink != nil {
		if err := spanSink.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", *spanOut, err)
		}
		if err := spanF.Commit(); err != nil {
			return fmt.Errorf("writing %s: %w", *spanOut, err)
		}
		logf("span trace committed to %s", *spanOut)
	}
	logf("drained, exiting")
	return nil
}
