package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/run"
	"repro/internal/server"
)

// helperEnv re-purposes the test binary as a real cntd process: when
// set, TestMain runs the daemon with the unit-separator-joined args
// instead of the tests. That gives the kill -9 end-to-end a genuine
// child process to SIGKILL — in-process cancellation cannot model a
// crash, which is the whole point of the journal.
const helperEnv = "CNTD_HELPER_ARGS"

func TestMain(m *testing.M) {
	if raw := os.Getenv(helperEnv); raw != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runCtx(ctx, strings.Split(raw, "\x1f"), os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "cntd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnDaemon starts the helper-process daemon on an ephemeral port
// and waits for its address announcement.
func spawnDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	joined := strings.Join(append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...), "\x1f")
	cmd.Env = append(os.Environ(), helperEnv+"="+joined)
	buf := &lockedBuffer{}
	cmd.Stderr = buf
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			return cmd, "http://" + m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon child never announced its address; stderr: %s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitRemote(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s (%v)", data, err)
	}
	return sub.ID
}

// pollDoc polls a job document until cond accepts it; 404s are
// tolerated (recovery re-admits asynchronously after a restart).
func pollDoc(t *testing.T, base, id string, cond func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		decErr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if decErr != nil {
				t.Fatal(decErr)
			}
			if cond(doc) {
				return doc
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the wanted condition; last doc: %v", id, doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonKill9Recovery is the crash-recovery end-to-end the journal
// exists for: SIGKILL a real daemon process mid-compare, restart over
// the same state dir, and require the recovered job to converge to a
// report byte-identical to a crash-free run — then a clean SIGTERM
// must leave an empty journal behind.
func TestDaemonKill9Recovery(t *testing.T) {
	dir := t.TempDir()
	spec := `{"source": {"kernel": "mm"}}`

	// Daemon A: a chaos delay parks the worker mid-job so the SIGKILL
	// reliably lands while the job is running.
	cmdA, baseA := spawnDaemon(t, "-workers", "1", "-state-dir", dir,
		"-chaos", "seed=1;worker.delay:every=1,delay=300s")
	id := submitRemote(t, baseA, `{"mode": "compare", "spec": `+spec+`}`)
	pollDoc(t, baseA, id, func(doc map[string]any) bool { return doc["state"] == "running" })
	if err := cmdA.Process.Kill(); err != nil { // SIGKILL: no drain, no compaction
		t.Fatal(err)
	}
	cmdA.Wait()

	// Daemon B over the same state dir, no chaos: recovery re-admits
	// the journaled job and runs it to completion.
	cmdB, baseB := spawnDaemon(t, "-workers", "1", "-state-dir", dir)
	doc := pollDoc(t, baseB, id, func(doc map[string]any) bool { return doc["state"] == "done" })
	if doc["recovered"] != true {
		t.Errorf("recovered job doc missing recovered flag: %v", doc)
	}
	if doc["restarts"] != float64(1) {
		t.Errorf("restarts = %v, want 1 (one dispatch before the crash)", doc["restarts"])
	}

	resp, err := http.Get(baseB + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	gotText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d; body: %s", resp.StatusCode, gotText)
	}

	// Crash-free reference: the same spec through run.Session directly.
	file, err := config.ParseBytes([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rspec, err := file.Spec()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rspec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sess.Compare()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	run.WriteComparisonText(&want, sess.Instance, cmp)
	if !bytes.Equal(gotText, want.Bytes()) {
		t.Errorf("recovered report differs from a crash-free run\n got: %q\nwant: %q", gotText, want.Bytes())
	}

	// Clean SIGTERM: exit 0 and a journal compacted down to nothing.
	if err := cmdB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmdB.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon B exited dirty after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon B did not exit after SIGTERM")
	}
	entries, err := server.ReadJournal(filepath.Join(dir, "journal.jsonl"), t.Logf)
	if err != nil || len(entries) != 0 {
		t.Errorf("journal after clean shutdown: %d entries (err=%v), want 0", len(entries), err)
	}
	// The artifact survives for the next boot to serve.
	if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
		t.Errorf("recovered job left no artifact: %v", err)
	}
}
