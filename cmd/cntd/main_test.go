package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/run"
)

// lockedBuffer is a Writer safe to share between the daemon goroutine
// and the test's polling loop.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening at http://(\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL, the cancel that plays SIGTERM, and the exit channel.
func startDaemon(t *testing.T, extraArgs ...string) (base string, stop context.CancelFunc, exited <-chan error, stderr *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	buf := &lockedBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extraArgs...)
	go func() {
		errs <- runCtx(ctx, args, io.Discard, buf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; stderr: %s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(cancel)
	return base, cancel, errs, buf
}

func waitState(t *testing.T, base, id string, terminal ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		state, _ := doc["state"].(string)
		for _, want := range terminal {
			if state == want {
				return doc
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonEndToEnd boots the daemon, submits the same mm compare
// `cntsim -workload mm -compare` runs, and asserts the HTTP report is
// byte-identical to a direct run.Session rendering. Then it delivers
// the SIGTERM equivalent and requires a clean (exit 0) drain.
func TestDaemonEndToEnd(t *testing.T) {
	base, stop, exited, _ := startDaemon(t)

	body := `{"mode": "compare", "tenant": "e2e", "spec": {"source": {"kernel": "mm"}}}`
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s (%v)", data, err)
	}

	doc := waitState(t, base, sub.ID, "done", "partial", "failed")
	if doc["state"] != "done" {
		t.Fatalf("job finished as %v (error %v)", doc["state"], doc["error"])
	}

	resp, err = http.Get(base + "/v1/runs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	gotText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d; body: %s", resp.StatusCode, gotText)
	}

	// Reference: the identical spec through run.Session directly.
	file, err := config.ParseBytes([]byte(`{"source": {"kernel": "mm"}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := file.Spec()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sess.Compare()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	run.WriteComparisonText(&want, sess.Instance, cmp)
	if !bytes.Equal(gotText, want.Bytes()) {
		t.Errorf("daemon report differs from direct run.Session output\n got: %q\nwant: %q", gotText, want.Bytes())
	}

	// SIGTERM equivalent: cancel the context, expect a clean drain.
	stop()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
}

// TestDaemonStateDirArtifacts: finished jobs leave parseable JSON
// artifacts in -state-dir after the drain.
func TestDaemonStateDirArtifacts(t *testing.T) {
	stateDir := t.TempDir()
	base, stop, exited, _ := startDaemon(t, "-state-dir", stateDir)

	body := `{"spec": {"source": {"kernel": "fir"}}}`
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, base, sub.ID, "done")

	stop()
	if err := <-exited; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}

	path := filepath.Join(stateDir, sub.ID+".json")
	artifact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(artifact, &doc); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if doc.ID != sub.ID || doc.State != "done" || len(doc.Report) == 0 {
		t.Fatalf("artifact = id %q state %q report %d bytes", doc.ID, doc.State, len(doc.Report))
	}
}

// TestDaemonFlagErrors: bad invocations fail fast instead of serving.
func TestDaemonFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"positional"},
		{"-addr", "999.999.999.999:1"},
	}
	for _, args := range cases {
		t.Run(fmt.Sprint(args), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := runCtx(ctx, args, io.Discard, io.Discard); err == nil {
				t.Errorf("runCtx(%v) = nil, want error", args)
			}
		})
	}
}

// TestDaemonTracedLifecycle boots the daemon with -span-out and a JSON
// access log, submits a traced compare (client traceparent on the
// request), and after the drain audits the committed span artifact:
// the job's root span must cover admission through flush with queue
// wait and per-cell simulation spans nested inside — the acceptance
// scenario of the tracing layer — and `cntstat -spans` consumes the
// same file via check.ReconcileSpans.
func TestDaemonTracedLifecycle(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "spans.jsonl")
	accessPath := filepath.Join(dir, "access.log")
	base, stop, exited, _ := startDaemon(t,
		"-span-out", spanPath, "-access-log", accessPath, "-log-json")

	const clientTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	body := `{"mode": "compare", "tenant": "traced", "spec": {"source": {"kernel": "fir"}}}`
	req, err := http.NewRequest(http.MethodPost, base+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", clientTP)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	// The request span joined the client's trace and was injected back.
	if tp := resp.Header.Get("Traceparent"); !strings.HasPrefix(tp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("response traceparent %q does not continue the client trace", tp)
	}
	var sub struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s (%v)", data, err)
	}
	if sub.Trace == "" || strings.HasPrefix(sub.Trace, "4bf92f35") {
		t.Fatalf("job trace = %q, want its own non-empty trace ID", sub.Trace)
	}

	doc := waitState(t, base, sub.ID, "done", "partial", "failed")
	if doc["state"] != "done" {
		t.Fatalf("job finished as %v (error %v)", doc["state"], doc["error"])
	}
	// Scheduler timestamps surface as queue/run latencies.
	if q, ok := doc["queue_ms"].(float64); !ok || q <= 0 {
		t.Errorf("status queue_ms = %v, want > 0", doc["queue_ms"])
	}
	if r, ok := doc["run_ms"].(float64); !ok || r <= 0 {
		t.Errorf("status run_ms = %v, want > 0", doc["run_ms"])
	}

	// Prometheus exposition next to the JSON snapshot.
	resp, err = http.Get(base + "/v1/runs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE server_job_queue_seconds histogram",
		`server_http_seconds_bucket{route="submit",status="202",le="+Inf"} 1`,
		`server_jobs_tenant_submitted{tenant="traced"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, prom)
		}
	}

	stop()
	if err := <-exited; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}

	// The committed span artifact reconciles and carries the full job
	// lifecycle.
	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ReconcileSpans(events); err != nil {
		t.Fatalf("span artifact does not reconcile: %v", err)
	}
	counts := map[string]int{}
	var root *obs.SpanEvent
	for _, e := range events {
		s, ok := e.(*obs.SpanEvent)
		if !ok || s.Trace != sub.Trace {
			continue
		}
		counts[s.Name]++
		if s.Name == "job" {
			root = s
		}
	}
	for _, stage := range []string{"job", "admission", "queue", "load", "compare", "flush"} {
		if counts[stage] != 1 {
			t.Errorf("job trace has %d %q spans, want 1 (%v)", counts[stage], stage, counts)
		}
	}
	if counts["cell"] < 2 {
		t.Errorf("job trace has %d cell spans, want one per variant", counts["cell"])
	}
	if root == nil || root.Attrs["state"] != "done" || root.Attrs["tenant"] != "traced" {
		t.Errorf("job root = %+v", root)
	}

	// JSON access log: one parseable object per request, tenant and
	// trace attached to the submit line.
	raw, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("access log has %d lines:\n%s", len(lines), raw)
	}
	sawSubmit := false
	for _, line := range lines {
		var entry struct {
			Route  string  `json:"route"`
			Status int     `json:"status"`
			DurMS  float64 `json:"dur_ms"`
			Trace  string  `json:"trace"`
			Tenant string  `json:"tenant"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("access line %q: %v", line, err)
		}
		if entry.Route == "submit" {
			sawSubmit = true
			if entry.Status != 202 || entry.Tenant != "traced" || entry.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
				t.Errorf("submit access entry = %+v", entry)
			}
		}
	}
	if !sawSubmit {
		t.Error("no submit line in the access log")
	}
}
