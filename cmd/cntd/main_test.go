package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/run"
)

// lockedBuffer is a Writer safe to share between the daemon goroutine
// and the test's polling loop.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening at http://(\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL, the cancel that plays SIGTERM, and the exit channel.
func startDaemon(t *testing.T, extraArgs ...string) (base string, stop context.CancelFunc, exited <-chan error, stderr *lockedBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	buf := &lockedBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extraArgs...)
	go func() {
		errs <- runCtx(ctx, args, io.Discard, buf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; stderr: %s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(cancel)
	return base, cancel, errs, buf
}

func waitState(t *testing.T, base, id string, terminal ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		state, _ := doc["state"].(string)
		for _, want := range terminal {
			if state == want {
				return doc
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonEndToEnd boots the daemon, submits the same mm compare
// `cntsim -workload mm -compare` runs, and asserts the HTTP report is
// byte-identical to a direct run.Session rendering. Then it delivers
// the SIGTERM equivalent and requires a clean (exit 0) drain.
func TestDaemonEndToEnd(t *testing.T) {
	base, stop, exited, _ := startDaemon(t)

	body := `{"mode": "compare", "tenant": "e2e", "spec": {"source": {"kernel": "mm"}}}`
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s (%v)", data, err)
	}

	doc := waitState(t, base, sub.ID, "done", "partial", "failed")
	if doc["state"] != "done" {
		t.Fatalf("job finished as %v (error %v)", doc["state"], doc["error"])
	}

	resp, err = http.Get(base + "/v1/runs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	gotText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d; body: %s", resp.StatusCode, gotText)
	}

	// Reference: the identical spec through run.Session directly.
	file, err := config.ParseBytes([]byte(`{"source": {"kernel": "mm"}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := file.Spec()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sess.Compare()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	run.WriteComparisonText(&want, sess.Instance, cmp)
	if !bytes.Equal(gotText, want.Bytes()) {
		t.Errorf("daemon report differs from direct run.Session output\n got: %q\nwant: %q", gotText, want.Bytes())
	}

	// SIGTERM equivalent: cancel the context, expect a clean drain.
	stop()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
}

// TestDaemonStateDirArtifacts: finished jobs leave parseable JSON
// artifacts in -state-dir after the drain.
func TestDaemonStateDirArtifacts(t *testing.T) {
	stateDir := t.TempDir()
	base, stop, exited, _ := startDaemon(t, "-state-dir", stateDir)

	body := `{"spec": {"source": {"kernel": "fir"}}}`
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, base, sub.ID, "done")

	stop()
	if err := <-exited; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}

	path := filepath.Join(stateDir, sub.ID+".json")
	artifact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(artifact, &doc); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if doc.ID != sub.ID || doc.State != "done" || len(doc.Report) == 0 {
		t.Fatalf("artifact = id %q state %q report %d bytes", doc.ID, doc.State, len(doc.Report))
	}
}

// TestDaemonFlagErrors: bad invocations fail fast instead of serving.
func TestDaemonFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"positional"},
		{"-addr", "999.999.999.999:1"},
	}
	for _, args := range cases {
		t.Run(fmt.Sprint(args), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := runCtx(ctx, args, io.Discard, io.Discard); err == nil {
				t.Errorf("runCtx(%v) = nil, want error", args)
			}
		})
	}
}
