// Command cntbench regenerates every table and figure of the CNT-Cache
// reproduction (see DESIGN.md's experiment index) and writes the results
// as aligned text and CSV into a results directory.
//
// Usage:
//
//	cntbench [-out results] [-only E3,E5] [-seed 1] [-quick] [-jobs N]
//	cntbench -progress 5s -metrics-addr :6060
//
// Independent experiments run concurrently on a bounded worker pool
// (-jobs; 0 means one worker per CPU). Results are emitted strictly in
// ID order regardless of completion order, so every table, INDEX.txt
// entry, and RESULTS.md section is identical to a serial run.
//
// Long batches can be watched live: -progress prints a periodic status
// line (experiments done/running, memo-cache hit rate) to stderr, and
// -metrics-addr serves the same status as JSON at /metrics plus the
// net/http/pprof surface under /debug/pprof/.
//
// SIGINT/SIGTERM interrupt the batch gracefully: in-flight simulation
// units stop dispatching, artifacts completed so far are flushed (all
// writes are atomic temp-file + rename), INDEX.txt and RESULTS.md gain
// a PARTIAL marker, and the process exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/experiments"
	"repro/internal/server"
)

// outcome is everything one experiment produces; workers fill these and
// the writer loop consumes them in submission order.
type outcome struct {
	exp      experiments.Experiment
	tab      *experiments.Table
	text     string // rendered table (plus chart for figure kinds)
	chart    string
	secs     float64
	counters experiments.RunCounters // replay volume the experiment simulated
	err      error
	done     chan struct{}
}

// accessesPerSec is the experiment's simulated replay throughput; zero
// when it simulated nothing (static tables) or finished instantly.
func (o *outcome) accessesPerSec() float64 {
	if o.secs <= 0 {
		return 0
	}
	return float64(o.counters.Accesses()) / o.secs
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntbench:", err)
		os.Exit(1)
	}
}

// syncWriter makes a writer safe for concurrent use: the -progress
// ticker goroutine, the metrics server and the main goroutine all share
// one stderr.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// runStatus is the live view of a batch: which experiments are running
// and how many are done. Workers update it; the -progress ticker and the
// -metrics-addr handler read it.
type runStatus struct {
	mu      sync.Mutex
	total   int
	done    int
	running map[string]time.Time
}

func newRunStatus(total int) *runStatus {
	return &runStatus{total: total, running: make(map[string]time.Time)}
}

func (s *runStatus) start(id string) {
	s.mu.Lock()
	s.running[id] = time.Now()
	s.mu.Unlock()
}

func (s *runStatus) finish(id string) {
	s.mu.Lock()
	delete(s.running, id)
	s.done++
	s.mu.Unlock()
}

// view is the status snapshot served at /metrics and rendered by the
// progress ticker, alongside the memoization counters.
type view struct {
	Done    int                   `json:"done"`
	Total   int                   `json:"total"`
	Running []string              `json:"running"`
	Memo    experiments.MemoStats `json:"memo"`
}

func (s *runStatus) snapshot() view {
	s.mu.Lock()
	v := view{Done: s.done, Total: s.total, Running: make([]string, 0, len(s.running))}
	for id := range s.running {
		v.Running = append(v.Running, id)
	}
	s.mu.Unlock()
	sort.Strings(v.Running)
	v.Memo = experiments.Stats()
	return v
}

func (v view) String() string {
	m := v.Memo.Instances.Add(v.Memo.Baselines)
	return fmt.Sprintf("progress: %d/%d done, running [%s], memo %d/%d hits (%.0f%%)",
		v.Done, v.Total, strings.Join(v.Running, " "),
		m.Hits, m.Lookups(), 100*m.HitRate())
}

// metricsHandler serves the live status as JSON at /metrics and the
// standard pprof surface under /debug/pprof/. The snapshot is encoded
// before any byte reaches the client, so a marshal failure becomes a
// logged 500 — never a 200 with a truncated body — with the error on
// errw (stderr).
func metricsHandler(st *runStatus, errw io.Writer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		buf, err := json.MarshalIndent(st.snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(errw, "cntbench: encoding /metrics:", err)
			http.Error(w, "encoding metrics failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(buf, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// run wires SIGINT/SIGTERM into a cancellation context: an interrupted
// batch stops dispatching simulation units, flushes the completed
// INDEX/RESULTS rows with a partial marker, and exits nonzero.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is the command behind a testable seam. An unknown experiment
// ID fails before any work starts or any output directory is created.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	// The progress ticker and the metrics server write to stderr from
	// their own goroutines; serialize every write onto one lock so they
	// never interleave with (or race against) the main goroutine.
	stderr = &syncWriter{w: stderr}
	fs := flag.NewFlagSet("cntbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "results", "output directory")
	only := fs.String("only", "", "comma-separated experiment IDs (default: all)")
	seed := fs.Int64("seed", 1, "workload generator seed")
	quick := fs.Bool("quick", false, "trimmed sweeps for a fast smoke run")
	jobs := fs.Int("jobs", 0, "concurrent experiments (0 = one per CPU, 1 = serial)")
	jsonOut := fs.String("json", "", "also write a machine-readable JSON summary of the batch to this file")
	replay := fs.Bool("replay", false, "measure raw replay throughput (accesses/second per variant over the suite) instead of running the experiment batch")
	replayJSON := fs.String("replay-json", "", "with -replay: write the throughput record (BENCH_REPLAY.json) to this file")
	replayBaseline := fs.String("replay-baseline", "", "with -replay: committed record to gate against; a throughput drop beyond -replay-tolerance is an error (checked before -replay-json overwrites the file)")
	replayTolerance := fs.Float64("replay-tolerance", 0.20, "allowed fractional throughput drop vs -replay-baseline")
	replayPasses := fs.Int("replay-passes", 3, "with -replay: passes per variant; the best pass is recorded")
	progress := fs.Duration("progress", 0, "print a status line to stderr this often (e.g. 2s; 0 disables)")
	metricsAddr := fs.String("metrics-addr", "", "serve live run status (JSON at /metrics) and pprof at this address (e.g. :6060)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *replay {
		return runReplayBench(experiments.Config{Seed: *seed, Quick: *quick, Ctx: ctx},
			*replayJSON, *replayBaseline, *replayTolerance, *replayPasses, stdout, stderr)
	}
	if *replayJSON != "" || *replayBaseline != "" {
		return fmt.Errorf("-replay-json/-replay-baseline need -replay")
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	} else {
		ids = experiments.IDs()
	}

	// Resolve everything up front so an unknown ID fails before any work.
	work := make([]*outcome, 0, len(ids))
	for _, id := range ids {
		exp, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		work = append(work, &outcome{exp: exp, done: make(chan struct{})})
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(work) {
		workers = len(work)
	}
	// With a concurrent outer pool each experiment runs its own sweeps
	// serially, keeping total parallelism near the CPU count; a serial
	// outer loop lets each experiment fan out internally instead.
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Jobs: 1, Ctx: ctx}
	if workers <= 1 {
		cfg.Jobs = 0
	}

	status := newRunStatus(len(work))
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		// The shared serving path (internal/server, also under cntd): a
		// real http.Server with graceful Shutdown, so exiting drains any
		// in-flight /metrics request instead of snapping the listener,
		// and a serve-loop death after a successful bind is surfaced on
		// stderr rather than silently swallowed.
		hs := server.StartHTTP(ln, metricsHandler(status, stderr))
		defer func() {
			if err := hs.Shutdown(2 * time.Second); err != nil {
				fmt.Fprintln(stderr, "cntbench: metrics server:", err)
			}
		}()
		fmt.Fprintf(stderr, "serving metrics at http://%s/metrics\n", ln.Addr())
	}
	if *progress > 0 {
		ticker := time.NewTicker(*progress)
		defer ticker.Stop()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Fprintln(stderr, status.snapshot())
				case <-stop:
					return
				}
			}
		}()
	}

	queue := make(chan *outcome)
	for w := 0; w < workers; w++ {
		go func() {
			for o := range queue {
				status.start(o.exp.ID)
				o.run(cfg)
				status.finish(o.exp.ID)
			}
		}()
	}
	go func() {
		for _, o := range work {
			queue <- o
		}
		close(queue)
	}()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// Writer loop: consume outcomes strictly in submission order so files,
	// stdout, INDEX.txt, and RESULTS.md match a serial run byte for byte.
	// All artifacts go through atomicio, so an interrupt or crash cannot
	// leave a truncated file behind.
	var index strings.Builder
	var tables []*experiments.Table
	var records []jsonRecord
	interrupted := false
	fmt.Fprintf(&index, "CNT-Cache reproduction results (seed=%d quick=%v)\n\n", *seed, *quick)
	for wi, o := range work {
		fmt.Fprintf(stderr, "running %s (%s: %s)...\n", o.exp.ID, o.exp.Kind, o.exp.Title)
		<-o.done
		if o.err != nil {
			if ctx.Err() != nil {
				// Interrupted: drain the remaining outcomes (their workers
				// abort fast on the cancelled context), then flush what
				// completed.
				interrupted = true
				for _, rest := range work[wi+1:] {
					<-rest.done
				}
				break
			}
			return fmt.Errorf("%s: %w", o.exp.ID, o.err)
		}
		if aps := o.accessesPerSec(); aps > 0 {
			fmt.Fprintf(stderr, "%s done in %.1fs (%d sims, %.2f Maccess/s)\n",
				o.exp.ID, o.secs, o.counters.Sims(), aps/1e6)
		} else {
			fmt.Fprintf(stderr, "%s done in %.1fs\n", o.exp.ID, o.secs)
		}
		if err := atomicio.WriteFile(filepath.Join(*out, o.exp.ID+".txt"), []byte(o.tab.Render())); err != nil {
			return err
		}
		if err := atomicio.WriteFile(filepath.Join(*out, o.exp.ID+".csv"), []byte(o.tab.CSV())); err != nil {
			return err
		}
		if o.chart != "" {
			if err := atomicio.WriteFile(filepath.Join(*out, o.exp.ID+".chart.txt"), []byte(o.chart)); err != nil {
				return err
			}
		}
		fmt.Fprintln(stdout, o.text)
		tables = append(tables, o.tab)
		records = append(records, jsonRecord{
			ID: o.tab.ID, Kind: o.tab.Kind, Title: o.tab.Title, Tag: o.tab.Tag,
			Seconds: o.secs, Sims: o.counters.Sims(), Accesses: o.counters.Accesses(),
			AccessesPerSec: o.accessesPerSec(),
			Columns:        o.tab.Columns, Rows: o.tab.Rows, Notes: o.tab.Notes,
		})
		// Timings go to stderr only, so INDEX.txt is byte-identical
		// across runs and for every -jobs value.
		fmt.Fprintf(&index, "%s: %s — %s\n", o.exp.ID, o.exp.Kind, o.exp.Title)
	}
	if interrupted {
		fmt.Fprintf(&index, "\nPARTIAL: interrupted after %d of %d experiments; remaining artifacts not written\n",
			len(tables), len(work))
	}
	if err := atomicio.WriteFile(filepath.Join(*out, "INDEX.txt"), []byte(index.String())); err != nil {
		return err
	}
	header := fmt.Sprintf("Generated by `cntbench` (seed=%d, quick=%v). See DESIGN.md for the experiment index and EXPERIMENTS.md for the paper-vs-measured discussion.", *seed, *quick)
	if interrupted {
		header += fmt.Sprintf("\n\n**PARTIAL RESULTS**: the batch was interrupted after %d of %d experiments.", len(tables), len(work))
	}
	md := experiments.MarkdownReport(tables, header)
	if err := atomicio.WriteFile(filepath.Join(*out, "RESULTS.md"), []byte(md)); err != nil {
		return err
	}
	if *jsonOut != "" && !interrupted {
		if err := writeJSONSummary(*jsonOut, *seed, *quick, records); err != nil {
			return err
		}
	}
	if interrupted {
		return fmt.Errorf("interrupted: partial results in %s/ (%d of %d experiments): %w",
			*out, len(tables), len(work), ctx.Err())
	}
	fmt.Fprintf(stderr, "results written to %s/\n", *out)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// jsonRecord is one experiment's machine-readable result: the full
// table plus the wall-clock it took and the replay volume it simulated
// (sims, accesses, accesses/second), so CI can archive a batch
// (make bench-json) and diff both numbers and throughput across
// commits. Static tables that simulate nothing report zero volume.
type jsonRecord struct {
	ID             string     `json:"id"`
	Kind           string     `json:"kind"`
	Title          string     `json:"title"`
	Tag            string     `json:"tag,omitempty"`
	Seconds        float64    `json:"seconds"`
	Sims           uint64     `json:"sims,omitempty"`
	Accesses       uint64     `json:"accesses,omitempty"`
	AccessesPerSec float64    `json:"accesses_per_sec,omitempty"`
	Columns        []string   `json:"columns"`
	Rows           [][]string `json:"rows"`
	Notes          []string   `json:"notes,omitempty"`
}

// jsonSummary is the top-level document -json writes.
type jsonSummary struct {
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Experiments []jsonRecord `json:"experiments"`
}

// runReplayBench is the -replay mode: measure the raw replay
// throughput of the batched path over the suite, gate it against a
// committed record when one is named (BEFORE any overwrite, so a
// regressing run fails without clobbering the reference), and persist
// the fresh record. This is the measurement behind make bench-json's
// BENCH_REPLAY.json and the CI bench job's regression gate.
func runReplayBench(cfg experiments.Config, jsonPath, baselinePath string, tolerance float64, passes int, stdout, stderr io.Writer) error {
	bench, err := experiments.MeasureReplay(cfg, passes)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replay throughput (seed=%d quick=%v, best of %d passes):\n",
		bench.Seed, bench.Quick, bench.Passes)
	for _, m := range bench.Variants {
		fmt.Fprintf(stdout, "  %-12s %9d accesses  %8.3fs  %8.2f Maccess/s\n",
			m.Variant, m.Accesses, m.Seconds, m.AccessesPerSec/1e6)
	}
	if baselinePath != "" {
		committed, err := readReplayBench(baselinePath)
		if err != nil {
			return err
		}
		if err := bench.CheckAgainst(committed, tolerance); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "within %.0f%% of the committed record (%s)\n", 100*tolerance, baselinePath)
	}
	if jsonPath != "" {
		if err := atomicio.WriteTo(jsonPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(bench)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

// readReplayBench loads a committed replay-throughput record.
func readReplayBench(path string) (*experiments.ReplayBench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var bench experiments.ReplayBench
	if err := json.NewDecoder(f).Decode(&bench); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return &bench, nil
}

func writeJSONSummary(path string, seed int64, quick bool, records []jsonRecord) error {
	return atomicio.WriteTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonSummary{Seed: seed, Quick: quick, Experiments: records}); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return nil
	})
}

// run executes one experiment and renders its artifacts; rendering
// happens here, off the writer loop, so slow tables overlap too.
func (o *outcome) run(cfg experiments.Config) {
	defer close(o.done)
	// Experiments check the context between simulation units, but cheap
	// static tables have none — refuse to start anything after interrupt.
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			o.err = err
			return
		}
	}
	cfg.Counters = &o.counters
	start := time.Now()
	tab, err := o.exp.Run(cfg)
	o.secs = time.Since(start).Seconds()
	if err != nil {
		o.err = err
		return
	}
	o.tab = tab
	o.text = tab.Render()
	// Figure-kind experiments also get an ASCII chart rendition.
	if strings.HasPrefix(o.exp.Kind, "Fig") {
		if col := experiments.DefaultChartColumn(tab); col != "" {
			if chart, err := experiments.Chart(tab, col, 50); err == nil {
				o.chart = chart
				o.text += "\n" + chart
			}
		}
	}
}
