package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrors checks that a bad invocation fails before any experiment
// runs or any output directory is created.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown experiment", []string{"-only", "E99"}, "E99"},
		{"unknown among valid", []string{"-only", "E1,nope"}, "nope"},
		{"unparseable flag", []string{"-jobs", "abc"}, "invalid value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "results")
			var out, errBuf bytes.Buffer
			err := run(append(c.args, "-out", dir), &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
			if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
				t.Fatalf("failed invocation still created the output directory %s", dir)
			}
		})
	}
}

// TestRunSingleExperiment smoke-tests the success path on the cheapest
// experiment (E1 is a static device table, no simulation) and checks the
// artifact set lands on disk.
func TestRunSingleExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-only", "E1", "-quick", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	for _, f := range []string{"E1.txt", "E1.csv", "INDEX.txt", "RESULTS.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "E1") {
		t.Errorf("stdout missing the rendered table:\n%s", out.String())
	}
}
