package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrors checks that a bad invocation fails before any experiment
// runs or any output directory is created.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown experiment", []string{"-only", "E99"}, "E99"},
		{"unknown among valid", []string{"-only", "E1,nope"}, "nope"},
		{"unparseable flag", []string{"-jobs", "abc"}, "invalid value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "results")
			var out, errBuf bytes.Buffer
			err := run(append(c.args, "-out", dir), &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
			if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
				t.Fatalf("failed invocation still created the output directory %s", dir)
			}
		})
	}
}

// TestRunSingleExperiment smoke-tests the success path on the cheapest
// experiment (E1 is a static device table, no simulation) and checks the
// artifact set lands on disk.
func TestRunSingleExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-only", "E1", "-quick", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	for _, f := range []string{"E1.txt", "E1.csv", "INDEX.txt", "RESULTS.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "E1") {
		t.Errorf("stdout missing the rendered table:\n%s", out.String())
	}
}

// TestRunJSONSummary checks the -json machine-readable summary: one
// record per experiment carrying the full table.
func TestRunJSONSummary(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-only", "E1,E2", "-quick", "-out", dir, "-json", jsonPath}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum jsonSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, raw)
	}
	if sum.Seed != 1 || !sum.Quick {
		t.Errorf("summary header = %+v", sum)
	}
	if len(sum.Experiments) != 2 || sum.Experiments[0].ID != "E1" || sum.Experiments[1].ID != "E2" {
		t.Fatalf("experiments = %+v, want E1 then E2", sum.Experiments)
	}
	for _, r := range sum.Experiments {
		if r.Title == "" || len(r.Columns) == 0 || len(r.Rows) == 0 || r.Seconds < 0 {
			t.Errorf("%s record incomplete: %+v", r.ID, r)
		}
	}
}

// TestRunInterrupted drives the SIGINT/SIGTERM path through the
// testable seam: a cancelled context must stop the batch, flush
// INDEX.txt and RESULTS.md with PARTIAL markers, skip the -json
// summary, and surface a nonzero "partial" error.
func TestRunInterrupted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	err := runCtx(ctx, []string{"-only", "E1,E2", "-quick", "-out", dir, "-json", jsonPath}, &out, &errBuf)
	if err == nil {
		t.Fatal("interrupted batch returned nil error")
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Errorf("error %q does not mark the results as partial", err)
	}
	index, readErr := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if readErr != nil {
		t.Fatalf("interrupted batch wrote no INDEX.txt: %v", readErr)
	}
	if !strings.Contains(string(index), "PARTIAL") {
		t.Errorf("INDEX.txt missing the PARTIAL marker:\n%s", index)
	}
	md, readErr := os.ReadFile(filepath.Join(dir, "RESULTS.md"))
	if readErr != nil {
		t.Fatalf("interrupted batch wrote no RESULTS.md: %v", readErr)
	}
	if !strings.Contains(string(md), "PARTIAL RESULTS") {
		t.Errorf("RESULTS.md missing the PARTIAL marker:\n%s", md)
	}
	if _, statErr := os.Stat(jsonPath); !os.IsNotExist(statErr) {
		t.Error("interrupted batch still wrote the -json summary")
	}
}

// TestRunWithProgressAndMetricsAddr exercises the live-introspection
// flags end to end on a cheap experiment: the run must succeed, report
// the listening address, and the progress machinery must not disturb the
// artifacts.
func TestRunWithProgressAndMetricsAddr(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	var out, errBuf bytes.Buffer
	args := []string{"-only", "E1", "-quick", "-out", dir,
		"-progress", "1ms", "-metrics-addr", "127.0.0.1:0"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "serving metrics at http://127.0.0.1:") {
		t.Errorf("stderr does not report the metrics address:\n%s", errBuf.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "E1.txt")); err != nil {
		t.Errorf("missing artifact: %v", err)
	}
}

// TestMetricsHandler drives the /metrics endpoint directly: valid JSON,
// the batch counters, and sorted running IDs; unknown paths 404.
func TestMetricsHandler(t *testing.T) {
	st := newRunStatus(5)
	st.start("E7")
	st.start("E3")
	st.finish("E3")
	var handlerErr bytes.Buffer
	h := metricsHandler(st, &handlerErr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	var v view
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if v.Done != 1 || v.Total != 5 || len(v.Running) != 1 || v.Running[0] != "E7" {
		t.Errorf("view = %+v, want 1/5 done with E7 running", v)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("pprof cmdline status = %d, want 200", rec.Code)
	}
}

// TestViewString pins the progress line's shape.
func TestViewString(t *testing.T) {
	st := newRunStatus(3)
	st.start("E2")
	line := st.snapshot().String()
	if !strings.Contains(line, "0/3 done") || !strings.Contains(line, "[E2]") {
		t.Errorf("progress line %q missing counts or running IDs", line)
	}
}

// TestRunReplayFlagValidation pins that the record/gate flags are
// meaningless without -replay and fail eagerly.
func TestRunReplayFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-replay-json", "x.json"},
		{"-replay-baseline", "x.json"},
	} {
		var out, errBuf bytes.Buffer
		err := run(args, &out, &errBuf)
		if err == nil || !strings.Contains(err.Error(), "-replay") {
			t.Errorf("run(%v) = %v, want an error demanding -replay", args, err)
		}
	}
}

// TestRunReplayRoundTrip measures quick-suite replay throughput with
// -replay, writes the record, re-reads it as the committed baseline and
// checks the gate passes against itself (the same machine moments
// later cannot regress 20%).
func TestRunReplayRoundTrip(t *testing.T) {
	record := filepath.Join(t.TempDir(), "replay.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-replay", "-quick", "-replay-passes", "1", "-replay-json", record}, &out, &errBuf); err != nil {
		t.Fatalf("run(-replay): %v (stderr: %s)", err, errBuf.String())
	}
	for _, want := range []string{"replay throughput", "baseline", "cnt-cache", "Maccess/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	bench, err := readReplayBench(record)
	if err != nil {
		t.Fatalf("record not readable: %v", err)
	}
	if len(bench.Variants) != 2 || bench.Passes != 1 || !bench.Quick {
		t.Fatalf("record = %+v, want 2 variants from one quick pass", bench)
	}
	for _, v := range bench.Variants {
		if v.Accesses == 0 || v.AccessesPerSec <= 0 {
			t.Errorf("variant %s measured nothing: %+v", v.Variant, v)
		}
	}

	out.Reset()
	if err := run([]string{"-replay", "-quick", "-replay-passes", "1", "-replay-baseline", record}, &out, &errBuf); err != nil {
		t.Fatalf("gate against own record failed: %v", err)
	}
	if !strings.Contains(out.String(), "within") {
		t.Errorf("gate pass not reported:\n%s", out.String())
	}

	// An unreachable committed figure must fail the gate and leave the
	// inflated record untouched (gate-before-overwrite).
	bench.Variants[0].AccessesPerSec *= 1e6
	raw, err := json.Marshal(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(record, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-replay", "-quick", "-replay-passes", "1",
		"-replay-baseline", record, "-replay-json", record}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate against inflated record = %v, want a regression error", err)
	}
	after, err := readReplayBench(record)
	if err != nil {
		t.Fatal(err)
	}
	if after.Variants[0].AccessesPerSec != bench.Variants[0].AccessesPerSec {
		t.Error("failed gate still overwrote the -replay-json record")
	}
}
