// Command cntexplore runs ad-hoc parameter sweeps over one workload: it
// varies one knob (window, partitions, deltat, fifo, idle) across a list
// of values and prints the saving of CNT-Cache over the baseline at each
// point. It complements cntbench (which regenerates the fixed experiment
// suite) for interactive design-space exploration.
//
// Usage:
//
//	cntexplore -workload mm -knob window -values 3,7,15,31,63
//	cntexplore -workload list -knob partitions -values 1,2,4,8,16,32,64
//	cntexplore -workload stack -knob deltat -values 0,0.1,0.2,0.4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/energy"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntexplore:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: any invalid flag, knob or
// sweep value comes back as an error instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "mm", "bundled kernel: "+strings.Join(workload.Names(), ","))
	knob := fs.String("knob", "window", "knob to sweep: window, partitions, deltat, fifo, idle, predictor")
	values := fs.String("values", "", "comma-separated values (required)")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	// Vet the whole sweep before simulating anything, so a typo in the
	// last value fails immediately instead of after minutes of work.
	points := strings.Split(*values, ",")
	for i := range points {
		points[i] = strings.TrimSpace(points[i])
		probe := core.DefaultOptions()
		if err := applyKnob(&probe, *knob, points[i]); err != nil {
			return err
		}
	}
	b, err := workload.ByName(*wl)
	if err != nil {
		return err
	}
	inst := b.Build(*seed)
	hier := cache.DefaultHierarchyConfig()

	base := core.BaselineOptions()
	baseRep, err := core.RunInstance(inst, core.SimConfig{Hierarchy: hier, DOpts: base, IOpts: base})
	if err != nil {
		return err
	}
	baseTotal := baseRep.DEnergy.Total()
	fmt.Fprintf(stdout, "workload %s: baseline D-cache %s\n", inst.Name, energy.Format(baseTotal))
	fmt.Fprintf(stdout, "%-10s %12s %10s %10s %8s\n", *knob, "D energy", "saving", "switches", "drop")

	for _, raw := range points {
		opts := core.DefaultOptions()
		if err := applyKnob(&opts, *knob, raw); err != nil {
			return err
		}
		rep, err := core.RunInstance(inst, core.SimConfig{Hierarchy: hier, DOpts: opts, IOpts: opts})
		if err != nil {
			return fmt.Errorf("%s=%s: %w", *knob, raw, err)
		}
		tot := rep.DEnergy.Total()
		fmt.Fprintf(stdout, "%-10s %12s %+9.1f%% %10d %8.3f\n",
			raw, energy.Format(tot), 100*energy.Saving(baseTotal, tot),
			rep.DSwitches, rep.DFIFO.DropRate())
	}
	return nil
}

func applyKnob(o *core.Options, knob, raw string) error {
	switch knob {
	case "window", "partitions", "fifo", "idle":
		v, err := strconv.Atoi(raw)
		if err != nil {
			return fmt.Errorf("knob %s: bad value %q", knob, raw)
		}
		switch knob {
		case "window":
			o.Window = v
		case "partitions":
			o.Spec = encoding.Spec{Kind: encoding.KindAdaptive, Partitions: v}
		case "fifo":
			o.FIFODepth = v
		case "idle":
			o.IdleSlots = v
		}
	case "deltat":
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("knob deltat: bad value %q", raw)
		}
		o.DeltaT = v
	case "predictor":
		o.PolicyName = raw
	default:
		return fmt.Errorf("unknown knob %q (want window, partitions, deltat, fifo, idle, predictor)", knob)
	}
	return nil
}
