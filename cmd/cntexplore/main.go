// Command cntexplore runs ad-hoc parameter sweeps over one workload: it
// varies one knob (window, partitions, deltat, fifo, idle, predictor)
// across a list of values and prints the saving of CNT-Cache over the
// baseline at each point. It complements cntbench (which regenerates the
// fixed experiment suite) for interactive design-space exploration.
// Every point executes through internal/run.Spec, the unified drive
// path shared with cntsim and cntbench.
//
// Usage:
//
//	cntexplore -workload mm -knob window -values 3,7,15,31,63
//	cntexplore -workload list -knob partitions -values 1,2,4,8,16,32,64
//	cntexplore -program matmul -knob deltat -values 0,0.1,0.2,0.4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	simrun "repro/internal/run"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntexplore:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: any invalid flag, knob or
// sweep value comes back as an error instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "bundled kernel: "+strings.Join(workload.Names(), ","))
	prog := fs.String("program", "", "bundled ISA program: "+strings.Join(isa.ProgramNames(), ","))
	traceFile := fs.String("trace", "", "trace file (.txt or binary)")
	knob := fs.String("knob", "window", "knob to sweep: window, partitions, deltat, fifo, idle, predictor")
	values := fs.String("values", "", "comma-separated values (required)")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	// The source flags are mutually exclusive; with none given, the mm
	// kernel keeps the command's historical default.
	src := simrun.Source{Kernel: *wl, Program: *prog, TracePath: *traceFile}
	if src == (simrun.Source{}) {
		src.Kernel = "mm"
	}
	if err := src.Validate(); err != nil {
		return err
	}

	// Vet the whole sweep before simulating anything, so a typo or an
	// out-of-range value in the last point fails immediately instead of
	// after minutes of work. Configure validates without loading the
	// source, which is exactly the eager check a sweep wants.
	points := strings.Split(*values, ",")
	specs := make([]simrun.Spec, len(points))
	for i := range points {
		points[i] = strings.TrimSpace(points[i])
		params := core.DefaultParams()
		if err := applyKnob(&params, *knob, points[i]); err != nil {
			return err
		}
		specs[i] = simrun.Spec{Variant: simrun.DefaultVariant, Params: &params}
		if _, err := specs[i].Configure(); err != nil {
			return fmt.Errorf("%s=%s: %w", *knob, points[i], err)
		}
	}

	// Load the instance once; every point replays the same stream.
	inst, err := src.Load(*seed)
	if err != nil {
		return err
	}

	baseRep, err := simrun.Spec{Source: simrun.Source{Instance: inst}, Variant: "baseline"}.Run()
	if err != nil {
		return err
	}
	baseTotal := baseRep.DEnergy.Total()
	fmt.Fprintf(stdout, "workload %s: baseline D-cache %s\n", inst.Name, energy.Format(baseTotal))
	fmt.Fprintf(stdout, "%-10s %12s %10s %10s %8s\n", *knob, "D energy", "saving", "switches", "drop")

	for i, raw := range points {
		spec := specs[i]
		spec.Source = simrun.Source{Instance: inst}
		rep, err := spec.Run()
		if err != nil {
			return fmt.Errorf("%s=%s: %w", *knob, raw, err)
		}
		tot := rep.DEnergy.Total()
		fmt.Fprintf(stdout, "%-10s %12s %+9.1f%% %10d %8.3f\n",
			raw, energy.Format(tot), 100*energy.Saving(baseTotal, tot),
			rep.DSwitches, rep.DFIFO.DropRate())
	}
	return nil
}

func applyKnob(p *core.Params, knob, raw string) error {
	switch knob {
	case "window", "partitions", "fifo", "idle":
		v, err := strconv.Atoi(raw)
		if err != nil {
			return fmt.Errorf("knob %s: bad value %q", knob, raw)
		}
		switch knob {
		case "window":
			p.Window = v
		case "partitions":
			p.Partitions = v
		case "fifo":
			p.FIFODepth = v
		case "idle":
			p.IdleSlots = v
		}
	case "deltat":
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("knob deltat: bad value %q", raw)
		}
		p.DeltaT = v
	case "predictor":
		p.PolicyName = raw
	default:
		return fmt.Errorf("unknown knob %q (want window, partitions, deltat, fifo, idle, predictor)", knob)
	}
	return nil
}
