package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunErrors drives the sweep command through its error surface; a
// bad sweep point must fail before any simulation runs (the probe pass),
// so the error arrives in milliseconds, not after the sweep.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing values", []string{"-knob", "window"}, "-values is required"},
		{"unknown knob", []string{"-knob", "nope", "-values", "1"}, "unknown knob"},
		{"unknown workload", []string{"-workload", "nope", "-knob", "window", "-values", "15"}, "nope"},
		{"bad int value", []string{"-knob", "window", "-values", "3,abc"}, "bad value"},
		{"bad float value", []string{"-knob", "deltat", "-values", "0.1,x"}, "bad value"},
		{"unparseable flag", []string{"-seed", "abc"}, "invalid value"},
		{"out-of-range window", []string{"-knob", "window", "-values", "0"}, "window"},
		{"out-of-range partitions", []string{"-knob", "partitions", "-values", "7"}, "partitions"},
		{"unknown predictor", []string{"-knob", "predictor", "-values", "nope"}, "nope"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}
