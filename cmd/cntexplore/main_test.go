package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunErrors drives the sweep command through its error surface; a
// bad sweep point must fail before any simulation runs (the probe pass),
// so the error arrives in milliseconds, not after the sweep.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing values", []string{"-knob", "window"}, "-values is required"},
		{"unknown knob", []string{"-knob", "nope", "-values", "1"}, "unknown knob"},
		{"unknown workload", []string{"-workload", "nope", "-knob", "window", "-values", "15"}, "nope"},
		{"unknown program", []string{"-program", "nope", "-knob", "window", "-values", "15"}, "unknown program"},
		{"two sources", []string{"-workload", "mm", "-program", "matmul", "-values", "15"}, "exactly one of"},
		{"three sources", []string{"-workload", "mm", "-program", "matmul", "-trace", "t.bin", "-values", "15"}, "exactly one of"},
		{"missing trace file", []string{"-trace", "/no/such/trace.txt", "-knob", "window", "-values", "15"}, "no/such"},
		{"bad int value", []string{"-knob", "window", "-values", "3,abc"}, "bad value"},
		{"bad float value", []string{"-knob", "deltat", "-values", "0.1,x"}, "bad value"},
		{"unparseable flag", []string{"-seed", "abc"}, "invalid value"},
		{"out-of-range window", []string{"-knob", "window", "-values", "0"}, "window"},
		{"out-of-range partitions", []string{"-knob", "partitions", "-values", "7"}, "partitions"},
		{"unknown predictor", []string{"-knob", "predictor", "-values", "nope"}, "nope"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunSweep exercises the happy path: one row per sweep point plus
// the two header lines.
func TestRunSweep(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "hist", "-knob", "window", "-values", "7,15"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("output has %d lines, want 4:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "workload hist: baseline D-cache") {
		t.Errorf("header = %q", lines[0])
	}
}
