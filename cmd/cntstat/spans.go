// The -spans view: per-trace span trees with durations and
// critical-path highlighting, plus an aggregate stage-latency table —
// rendered from a span JSONL trace written by cntd -span-out or
// cntsim -span-out. The same reconciliation-before-rendering contract
// as the energy view applies: a stream that fails the span-nesting
// audit (internal/check.ReconcileSpans) is a non-zero exit, not a
// pretty tree over broken data.
package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/obs"
)

// printSpans renders every trace in the stream as an indented tree in
// start-time order, then the aggregate per-stage latency table.
func printSpans(w io.Writer, events []obs.Event) error {
	if err := check.ReconcileSpans(events); err != nil {
		return fmt.Errorf("span trace does not reconcile: %w", err)
	}
	var spans []*obs.SpanEvent
	for _, e := range events {
		if s, ok := e.(*obs.SpanEvent); ok {
			spans = append(spans, s)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace has no span records")
	}

	byTrace := make(map[string][]*obs.SpanEvent)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	traces := make([]string, 0, len(byTrace))
	for id := range byTrace {
		traces = append(traces, id)
	}
	// Trace order: earliest root start first; the IDs tie-break so the
	// rendering is deterministic for identical timestamps.
	sort.Slice(traces, func(i, j int) bool {
		a, b := earliestStart(byTrace[traces[i]]), earliestStart(byTrace[traces[j]])
		if a != b {
			return a < b
		}
		return traces[i] < traces[j]
	})

	for _, id := range traces {
		printTraceTree(w, id, byTrace[id])
	}
	printStageTable(w, spans, len(traces))
	return nil
}

func earliestStart(spans []*obs.SpanEvent) int64 {
	min := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start < min {
			min = s.Start
		}
	}
	return min
}

// printTraceTree renders one trace as an indented tree. The chain of
// spans that determines when the root ends — at each level the child
// whose end is latest — is the critical path, marked with '*': the
// stages worth shaving to make the whole job faster.
func printTraceTree(w io.Writer, id string, spans []*obs.SpanEvent) {
	children := make(map[string][]*obs.SpanEvent, len(spans))
	byID := make(map[string]*obs.SpanEvent, len(spans))
	for _, s := range spans {
		byID[s.Span] = s
	}
	var root *obs.SpanEvent
	for _, s := range spans {
		if _, ok := byID[s.Parent]; s.Parent != "" && ok {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			root = s // ReconcileSpans guarantees exactly one
		}
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].Span < kids[j].Span
		})
	}

	// The critical path: from the root, repeatedly descend into the
	// child that ends last.
	critical := map[string]bool{root.Span: true}
	for cur := root; ; {
		kids := children[cur.Span]
		if len(kids) == 0 {
			break
		}
		last := kids[0]
		for _, k := range kids[1:] {
			if k.EndNS() > last.EndNS() {
				last = k
			}
		}
		critical[last.Span] = true
		cur = last
	}

	fmt.Fprintf(w, "trace %s (%d spans):\n", id, len(spans))
	var walk func(s *obs.SpanEvent, depth int)
	walk = func(s *obs.SpanEvent, depth int) {
		mark := " "
		if critical[s.Span] {
			mark = "*"
		}
		fmt.Fprintf(w, "%s %*s%-*s %12s%s\n",
			mark, 2*depth, "", 24-2*depth, s.Name, fmtDur(s.Dur), spanDetail(s))
		for _, k := range children[s.Span] {
			walk(k, depth+1)
		}
	}
	walk(root, 0)
	fmt.Fprintln(w)
}

// spanDetail picks the attributes worth a tree line: identity and
// outcome, not the full bag.
func spanDetail(s *obs.SpanEvent) string {
	out := ""
	for _, key := range []string{"job", "route", "variant", "memo", "state", "status", "error"} {
		if v, ok := s.Attrs[key]; ok {
			out += fmt.Sprintf("  %s=%s", key, v)
		}
	}
	return out
}

// printStageTable aggregates every span by name into a latency table:
// count, p50, p95 and max duration per stage, ordered by total time
// spent so the dominant stages lead.
func printStageTable(w io.Writer, spans []*obs.SpanEvent, traces int) {
	byName := make(map[string][]int64)
	total := make(map[string]int64)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s.Dur)
		total[s.Name] += s.Dur
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if total[names[i]] != total[names[j]] {
			return total[names[i]] > total[names[j]]
		}
		return names[i] < names[j]
	})

	fmt.Fprintf(w, "stage latency (%d traces, %d spans):\n", traces, len(spans))
	fmt.Fprintf(w, "  %-16s %6s %12s %12s %12s\n", "stage", "count", "p50", "p95", "max")
	for _, name := range names {
		durs := byName[name]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		fmt.Fprintf(w, "  %-16s %6d %12s %12s %12s\n",
			name, len(durs), fmtDur(quantile(durs, 0.50)), fmtDur(quantile(durs, 0.95)), fmtDur(durs[len(durs)-1]))
	}
}

// quantile returns the q-quantile of sorted durations via the
// nearest-rank method (q in (0,1]).
func quantile(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// fmtDur renders a nanosecond duration compactly (µs under 1ms, ms
// under 1s, seconds above), stable enough to grep in CI.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
