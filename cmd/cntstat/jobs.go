package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/server"
)

// printJobs audits a cntd -state-dir offline: the artifact table (one
// row per finished job, decoded through the same loader boot recovery
// uses) and a journal summary naming the work a restarted daemon would
// resume. Corrupt artifacts are counted, warned to stderr, and
// skipped — same tolerance as the daemon's own boot.
func printJobs(stdout, stderr io.Writer, dir string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var docs []*server.JobDoc
	skipped := 0
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(stderr, "cntstat: skipping %s: %v\n", name, err)
			skipped++
			continue
		}
		doc, err := server.DecodeJobDoc(data)
		if err != nil {
			fmt.Fprintf(stderr, "cntstat: skipping %s: %v\n", name, err)
			skipped++
			continue
		}
		docs = append(docs, doc)
	}
	sort.Slice(docs, func(i, k int) bool { return docs[i].ID < docs[k].ID })

	fmt.Fprintf(stdout, "state dir %s: %d artifacts", dir, len(docs))
	if skipped > 0 {
		fmt.Fprintf(stdout, " (%d skipped)", skipped)
	}
	fmt.Fprintln(stdout)
	if len(docs) > 0 {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ID\tSTATE\tTENANT\tMODE\tRUN_MS\tRECOVERED\tERROR")
		for _, d := range docs {
			recovered := ""
			if d.Recovered {
				recovered = fmt.Sprintf("yes (%d restarts)", d.Restarts)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.1f\t%s\t%s\n",
				d.ID, d.State, d.Tenant, d.Mode, d.RunMS, recovered, d.Error)
		}
		tw.Flush()
	}

	entries, err := server.ReadJournal(filepath.Join(dir, server.JournalFile), func(format string, a ...any) {
		fmt.Fprintf(stderr, "cntstat: "+format+"\n", a...)
	})
	if err != nil {
		return err
	}
	open, queued, midRun := 0, 0, 0
	for _, e := range entries {
		if e.Done {
			continue
		}
		open++
		if e.Starts > 0 {
			midRun++
		} else {
			queued++
		}
	}
	if open == 0 {
		fmt.Fprintln(stdout, "journal: empty (clean shutdown)")
		return nil
	}
	fmt.Fprintf(stdout, "journal: %d open jobs a restart would resume (%d queued, %d mid-run at crash)\n",
		open, queued, midRun)
	for _, e := range entries {
		if !e.Done {
			fmt.Fprintf(stdout, "  %s starts=%d tenant=%s\n", e.ID, e.Starts, e.Tenant)
		}
	}
	return nil
}
