package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJobsAuditsStateDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"job-000001.json": `{"id":"job-000001","tenant":"alice","mode":"compare","state":"done","run_ms":12.5}`,
		"job-000002.json": `{"id":"job-000002","mode":"run","state":"failed","error":"boom","recovered":true,"restarts":2}`,
		"broken.json":     `{"id":"broken"`,
		"journal.jsonl": `{"op":"admit","id":"job-000003","seq":3,"tenant":"bob","spec":{"source":{"kernel":"mm"}}}` + "\n" +
			`{"op":"admit","id":"job-000004","seq":4,"spec":{"source":{"kernel":"mm"}}}` + "\n" +
			`{"op":"start","id":"job-000004","starts":1}` + "\n",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-jobs", dir}, &out, &errb); err != nil {
		t.Fatalf("run -jobs: %v (stderr: %s)", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"2 artifacts", "(1 skipped)",
		"job-000001", "done", "alice",
		"job-000002", "failed", "yes (2 restarts)", "boom",
		"2 open jobs", "1 queued, 1 mid-run",
		"job-000003 starts=0 tenant=bob",
		"job-000004 starts=1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errb.String(), "skipping broken.json") {
		t.Errorf("stderr does not warn about the corrupt artifact: %s", errb.String())
	}
}

func TestJobsCleanShutdownAndFlagErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000001.json"),
		[]byte(`{"id":"job-000001","mode":"run","state":"done"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-jobs", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "journal: empty (clean shutdown)") {
		t.Errorf("missing clean-shutdown line:\n%s", out.String())
	}

	if err := run([]string{"-jobs", dir, "extra.jsonl"}, &out, &errb); err == nil {
		t.Error("-jobs with a trace argument should fail")
	}
	if err := run([]string{"-jobs", dir, "-spans"}, &out, &errb); err == nil {
		t.Error("-jobs with -spans should fail")
	}
	if err := run([]string{"-jobs", filepath.Join(dir, "nope")}, &out, &errb); err == nil {
		t.Error("-jobs over a missing dir should fail")
	}
}
