package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// writeTrace runs one kernel with a JSONL sink and returns the file.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	cfg := core.DefaultSimConfig()
	cfg.DOpts.Trace = sink
	cfg.IOpts.Trace = sink
	if _, err := core.RunInstance(workload.Histogram(1), cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersReport(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"L1D:", "L1I:", // both caches attributed
		"data write", "switch", "periphery", "total", // component rows
		"timeline", "accesses", // the binned table
		"timeline (trace): switches", // the chart header
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCacheFilterAndBins(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-cache", "L1D", "-bins", "5", path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if strings.Contains(s, "L1I:") {
		t.Error("-cache L1D still reports L1I")
	}
	// 5 bins => rows 0..4 and no row 5.
	if !strings.Contains(s, "\n4 ") || strings.Contains(s, "\n5 ") {
		t.Errorf("-bins 5 not respected:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeTrace(t)

	truncated := filepath.Join(dir, "truncated.jsonl")
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the stream before the closing summaries: it decodes fine but
	// must fail reconciliation.
	lines := bytes.Split(raw, []byte("\n"))
	if err := os.WriteFile(truncated, bytes.Join(lines[:len(lines)/2], []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte(`{"v":9,"t":"access","e":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no file", []string{}, "usage"},
		{"two files", []string{good, good}, "usage"},
		{"missing file", []string{filepath.Join(dir, "absent.jsonl")}, "absent.jsonl"},
		{"bad bins", []string{"-bins", "0", good}, "-bins"},
		{"unknown cache", []string{"-cache", "L9X", good}, "L9X"},
		{"truncated trace", []string{truncated}, "reconcile"},
		{"wrong version", []string{corrupt}, "version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunBench covers the -bench view over both document shapes cntbench
// writes: a replay-throughput record and a -json batch summary.
func TestRunBench(t *testing.T) {
	dir := t.TempDir()
	replay := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(replay, []byte(`{
		"seed": 1, "quick": true, "passes": 3,
		"variants": [
			{"variant": "baseline", "accesses": 330373, "seconds": 0.009, "accesses_per_sec": 38.5e6},
			{"variant": "cnt-cache", "accesses": 330373, "seconds": 0.012, "accesses_per_sec": 28.4e6}
		]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	batch := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(batch, []byte(`{
		"seed": 1, "quick": true,
		"experiments": [
			{"id": "E3", "seconds": 0.5, "sims": 21, "accesses": 1000000, "accesses_per_sec": 2e6},
			{"id": "E1", "seconds": 0.1}
		]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", replay}, &out, &errBuf); err != nil {
		t.Fatalf("run(-bench replay): %v", err)
	}
	for _, want := range []string{"replay throughput", "best of 3 passes", "baseline", "cnt-cache", "38.50 Maccess/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("replay rendering missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-bench", batch}, &out, &errBuf); err != nil {
		t.Fatalf("run(-bench batch): %v", err)
	}
	for _, want := range []string{"batch throughput", "E3", "21 sims", "(no simulations)", "overall"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("batch rendering missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunBenchErrors pins the -bench failure modes: a stray positional
// argument, a missing file, and a JSON document that is neither shape.
func TestRunBenchErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"seed": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"trace arg alongside -bench", []string{"-bench", empty, "extra.jsonl"}, "no trace argument"},
		{"missing file", []string{"-bench", filepath.Join(dir, "absent.json")}, "absent.json"},
		{"wrong shape", []string{"-bench", empty}, "neither"},
		{"not json", []string{"-bench", garbage}, "reading"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// writeSpanTrace emits a small two-trace span file through a seeded
// tracer: a job lifecycle with two concurrent cells, plus a separate
// request trace.
func writeSpanTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.NewTracerSeeded(sink, 5)

	root := tr.StartSpan("job", obs.SpanContext{}).Annotate("job", "job-000001")
	adm := root.Child("admission")
	adm.End()
	queue := root.Child("queue")
	queue.End()
	cmp := root.Child("compare")
	for _, v := range []string{"baseline", "cnt-cache"} {
		c := cmp.Child("cell").Annotate("variant", v)
		c.End()
	}
	cmp.End()
	root.Child("flush").End()
	root.Annotate("state", "done").End()

	req := tr.StartSpan("http.request", obs.SpanContext{}).Annotate("route", "submit")
	req.End()

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpansRendersTreesAndTable drives cntstat -spans over a known
// trace: per-trace trees with durations and a critical-path marker,
// then the aggregate stage-latency table.
func TestSpansRendersTreesAndTable(t *testing.T) {
	path := writeSpanTrace(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-spans", path}, &out, &errBuf); err != nil {
		t.Fatalf("run -spans: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"trace ",                             // one header per trace
		"job",                                // the root line
		"variant=baseline",                   // cell detail
		"variant=cnt-cache",                  //
		"job=job-000001",                     // root detail
		"http.request",                       // the second trace renders too
		"stage latency (2 traces, 8 spans):", // the aggregate table
		"p50", "p95", "max",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-spans output missing %q:\n%s", want, s)
		}
	}
	// The root of every trace is on its own critical path.
	if !strings.Contains(s, "* job") {
		t.Errorf("-spans output has no critical-path marker on the job root:\n%s", s)
	}
}

// TestSpansRejectsBrokenTrace: the nesting audit gates rendering, the
// same way ReconcileEvents gates the energy view.
func TestSpansRejectsBrokenTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	// Two roots in one trace: the child claims a parent that is present
	// but the stream has a second parentless span.
	lines := `{"v":1,"t":"span","e":{"trace":"11111111111111111111111111111111","span":"1111111111111111","name":"job","start_ns":0,"dur_ns":100}}
{"v":1,"t":"span","e":{"trace":"11111111111111111111111111111111","span":"2222222222222222","name":"ghost","start_ns":10,"dur_ns":10}}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-spans", path}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "reconcile") {
		t.Fatalf("run -spans on a two-root trace = %v, want a reconcile error", err)
	}
}

// TestSpansFlagErrors: -spans needs exactly one file and excludes
// -bench.
func TestSpansFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-spans"}, &out, &errBuf); err == nil {
		t.Error("-spans with no file succeeded")
	}
	if err := run([]string{"-spans", "-bench", "x.json"}, &out, &errBuf); err == nil {
		t.Error("-spans with -bench succeeded")
	}
}
