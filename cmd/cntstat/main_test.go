package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// writeTrace runs one kernel with a JSONL sink and returns the file.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	cfg := core.DefaultSimConfig()
	cfg.DOpts.Trace = sink
	cfg.IOpts.Trace = sink
	if _, err := core.RunInstance(workload.Histogram(1), cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersReport(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"L1D:", "L1I:", // both caches attributed
		"data write", "switch", "periphery", "total", // component rows
		"timeline", "accesses", // the binned table
		"timeline (trace): switches", // the chart header
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCacheFilterAndBins(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-cache", "L1D", "-bins", "5", path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if strings.Contains(s, "L1I:") {
		t.Error("-cache L1D still reports L1I")
	}
	// 5 bins => rows 0..4 and no row 5.
	if !strings.Contains(s, "\n4 ") || strings.Contains(s, "\n5 ") {
		t.Errorf("-bins 5 not respected:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeTrace(t)

	truncated := filepath.Join(dir, "truncated.jsonl")
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the stream before the closing summaries: it decodes fine but
	// must fail reconciliation.
	lines := bytes.Split(raw, []byte("\n"))
	if err := os.WriteFile(truncated, bytes.Join(lines[:len(lines)/2], []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte(`{"v":9,"t":"access","e":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no file", []string{}, "usage"},
		{"two files", []string{good, good}, "usage"},
		{"missing file", []string{filepath.Join(dir, "absent.jsonl")}, "absent.jsonl"},
		{"bad bins", []string{"-bins", "0", good}, "-bins"},
		{"unknown cache", []string{"-cache", "L9X", good}, "L9X"},
		{"truncated trace", []string{truncated}, "reconcile"},
		{"wrong version", []string{corrupt}, "version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}
