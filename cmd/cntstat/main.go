// Command cntstat inspects a JSONL event trace written by
// cntsim -trace-out: it verifies that the trace is internally consistent
// (every per-event energy delta reconciles with the closing summary —
// divergence is a non-zero exit), then renders a per-cache
// energy-attribution summary, a binned activity timeline, and a
// switch-rate-vs-time chart.
//
// Usage:
//
//	cntsim -workload mm -trace-out events.jsonl
//	cntstat events.jsonl
//	cntstat -cache L1D -bins 40 events.jsonl
//
// With -spans it instead reads a span JSONL trace (written by
// cntd -span-out or cntsim -span-out), audits it with
// check.ReconcileSpans, and renders per-trace span trees — durations
// per stage, critical path marked with '*' — plus an aggregate
// stage-latency table (count/p50/p95/max):
//
//	cntstat -spans spans.jsonl
//
// With -jobs it audits a cntd -state-dir offline: the finished-job
// artifact table (decoded with the daemon's own tolerant loader) plus
// a summary of the journal entries a restarted daemon would resume:
//
//	cntstat -jobs /var/lib/cntd
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntstat:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam; every failure — including a
// trace that does not reconcile — is a returned error.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bins := fs.Int("bins", 20, "timeline resolution (bins over the event stream)")
	cacheName := fs.String("cache", "", "restrict the report to one cache (e.g. L1D)")
	bench := fs.String("bench", "", "render throughput lines from a cntbench JSON file (a -json batch summary or a BENCH_REPLAY.json record) instead of reading an event trace")
	spans := fs.Bool("spans", false, "render per-trace span trees and the stage-latency table from a span JSONL trace (cntd/cntsim -span-out)")
	jobs := fs.String("jobs", "", "audit a cntd -state-dir: the finished-job artifact table plus the journal entries a restart would resume")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-jobs takes no trace argument")
		}
		if *spans || *bench != "" {
			return fmt.Errorf("-jobs is mutually exclusive with -spans and -bench")
		}
		return printJobs(stdout, stderr, *jobs)
	}
	if *bench != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-bench takes no trace argument")
		}
		if *spans {
			return fmt.Errorf("-bench and -spans are mutually exclusive")
		}
		return printBench(stdout, *bench)
	}
	if *spans {
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: cntstat -spans spans.jsonl")
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := obs.ReadEvents(f)
		if err != nil {
			return err
		}
		return printSpans(stdout, events)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cntstat [-bins N] [-cache L1D] events.jsonl | cntstat -bench BENCH.json")
	}
	if *bins < 1 {
		return fmt.Errorf("-bins must be at least 1, got %d", *bins)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}

	// The gate: a trace whose deltas do not reconcile with its summaries
	// is not worth rendering — something (a truncated file, a lossy sink,
	// mixed runs in one file) broke the attribution contract.
	if err := check.ReconcileEvents(events); err != nil {
		return fmt.Errorf("trace does not reconcile: %w", err)
	}

	if *cacheName != "" {
		filtered := events[:0:0]
		for _, e := range events {
			if e.CacheName() == *cacheName {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("trace has no events for cache %q", *cacheName)
		}
		events = filtered
	}

	attr := obs.Attribute(events)
	for _, name := range obs.Caches(attr) {
		printAttribution(stdout, name, attr[name])
	}

	tl := timeline(events, *bins)
	fmt.Fprintln(stdout, tl.Render())
	chart, err := experiments.Chart(tl, "switches", 50)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, chart)
	return nil
}

// benchDoc covers both machine-readable documents cntbench writes: the
// -json batch summary (experiments with per-experiment replay volume)
// and the -replay record (variants with suite throughput). Exactly one
// of the two lists is populated per file.
type benchDoc struct {
	Seed        int64 `json:"seed"`
	Quick       bool  `json:"quick"`
	Experiments []struct {
		ID             string  `json:"id"`
		Seconds        float64 `json:"seconds"`
		Sims           uint64  `json:"sims"`
		Accesses       uint64  `json:"accesses"`
		AccessesPerSec float64 `json:"accesses_per_sec"`
	} `json:"experiments"`
	Passes   int `json:"passes"`
	Variants []struct {
		Variant        string  `json:"variant"`
		Accesses       uint64  `json:"accesses"`
		Seconds        float64 `json:"seconds"`
		AccessesPerSec float64 `json:"accesses_per_sec"`
	} `json:"variants"`
}

// printBench renders the throughput view of a cntbench JSON file: one
// line per experiment (batch summary) or per variant (replay record),
// with wall time, replay volume and accesses/second.
func printBench(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var doc benchDoc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	switch {
	case len(doc.Variants) > 0:
		fmt.Fprintf(w, "replay throughput (seed=%d quick=%v, best of %d passes):\n",
			doc.Seed, doc.Quick, doc.Passes)
		for _, v := range doc.Variants {
			fmt.Fprintf(w, "  %-14s %10d accesses  %8.3fs  %8.2f Maccess/s\n",
				v.Variant, v.Accesses, v.Seconds, v.AccessesPerSec/1e6)
		}
	case len(doc.Experiments) > 0:
		fmt.Fprintf(w, "batch throughput (seed=%d quick=%v):\n", doc.Seed, doc.Quick)
		var accesses uint64
		var secs float64
		for _, e := range doc.Experiments {
			if e.Sims == 0 {
				fmt.Fprintf(w, "  %-14s %8.1fs  (no simulations)\n", e.ID, e.Seconds)
				continue
			}
			fmt.Fprintf(w, "  %-14s %8.1fs  %4d sims  %10d accesses  %8.2f Maccess/s\n",
				e.ID, e.Seconds, e.Sims, e.Accesses, e.AccessesPerSec/1e6)
			accesses += e.Accesses
			secs += e.Seconds
		}
		if secs > 0 {
			fmt.Fprintf(w, "  %-14s %8.1fs  %21d accesses  %8.2f Maccess/s\n",
				"overall", secs, accesses, float64(accesses)/secs/1e6)
		}
	default:
		return fmt.Errorf("%s: neither a batch summary nor a replay record", path)
	}
	return nil
}

// printAttribution renders one cache's energy breakdown with per-
// component shares. ReconcileEvents already proved the summed deltas
// match the summary, so the exact summary breakdown is the one shown.
func printAttribution(w io.Writer, name string, a *obs.Attribution) {
	s := a.Summary
	total := s.Energy.Total()
	share := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * v / total
	}
	fmt.Fprintf(w, "%s: %d accesses (%d hits), %d windows, %d switches, %d drains (%d stale)\n",
		name, a.Accesses, a.Hits, a.Windows, a.Switches, a.Drains, a.StaleDrains)
	fmt.Fprintf(w, "%s: fifo enq=%d drop=%d\n", name, s.FIFOEnqueued, s.FIFODropped)
	for _, c := range []struct {
		label string
		v     float64
	}{
		{"data read", s.Energy.DataRead},
		{"data write", s.Energy.DataWrite},
		{"meta read", s.Energy.MetaRead},
		{"meta write", s.Energy.MetaWrite},
		{"encoder", s.Energy.Encoder},
		{"switch", s.Energy.Switch},
		{"periphery", s.Energy.Periphery},
	} {
		fmt.Fprintf(w, "  %-10s %12s  %5.1f%%\n", c.label, energy.Format(c.v), share(c.v))
	}
	fmt.Fprintf(w, "  %-10s %12s\n\n", "total", energy.Format(total))
}

// timeline folds the event stream into fixed-width bins by event index —
// the trace's own notion of time — counting each kind per bin.
func timeline(events []obs.Event, bins int) *experiments.Table {
	if bins > len(events) && len(events) > 0 {
		bins = len(events)
	}
	type counts struct{ acc, win, sw, dr uint64 }
	per := make([]counts, bins)
	for i, e := range events {
		b := i * bins / len(events)
		switch e.(type) {
		case *obs.AccessEvent:
			per[b].acc++
		case *obs.WindowEvent:
			per[b].win++
		case *obs.SwitchEvent:
			per[b].sw++
		case *obs.DrainEvent:
			per[b].dr++
		}
	}
	t := &experiments.Table{
		ID:          "timeline",
		Kind:        "trace",
		Title:       "activity per event-index bin",
		Tag:         "[trace]",
		Columns:     []string{"bin", "accesses", "windows", "switches", "drains"},
		ChartColumn: "switches",
	}
	for i, c := range per {
		t.AddRow(fmt.Sprintf("%d", i), c.acc, c.win, c.sw, c.dr)
	}
	return t
}
