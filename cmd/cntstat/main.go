// Command cntstat inspects a JSONL event trace written by
// cntsim -trace-out: it verifies that the trace is internally consistent
// (every per-event energy delta reconciles with the closing summary —
// divergence is a non-zero exit), then renders a per-cache
// energy-attribution summary, a binned activity timeline, and a
// switch-rate-vs-time chart.
//
// Usage:
//
//	cntsim -workload mm -trace-out events.jsonl
//	cntstat events.jsonl
//	cntstat -cache L1D -bins 40 events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntstat:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam; every failure — including a
// trace that does not reconcile — is a returned error.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bins := fs.Int("bins", 20, "timeline resolution (bins over the event stream)")
	cacheName := fs.String("cache", "", "restrict the report to one cache (e.g. L1D)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cntstat [-bins N] [-cache L1D] events.jsonl")
	}
	if *bins < 1 {
		return fmt.Errorf("-bins must be at least 1, got %d", *bins)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}

	// The gate: a trace whose deltas do not reconcile with its summaries
	// is not worth rendering — something (a truncated file, a lossy sink,
	// mixed runs in one file) broke the attribution contract.
	if err := check.ReconcileEvents(events); err != nil {
		return fmt.Errorf("trace does not reconcile: %w", err)
	}

	if *cacheName != "" {
		filtered := events[:0:0]
		for _, e := range events {
			if e.CacheName() == *cacheName {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("trace has no events for cache %q", *cacheName)
		}
		events = filtered
	}

	attr := obs.Attribute(events)
	for _, name := range obs.Caches(attr) {
		printAttribution(stdout, name, attr[name])
	}

	tl := timeline(events, *bins)
	fmt.Fprintln(stdout, tl.Render())
	chart, err := experiments.Chart(tl, "switches", 50)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, chart)
	return nil
}

// printAttribution renders one cache's energy breakdown with per-
// component shares. ReconcileEvents already proved the summed deltas
// match the summary, so the exact summary breakdown is the one shown.
func printAttribution(w io.Writer, name string, a *obs.Attribution) {
	s := a.Summary
	total := s.Energy.Total()
	share := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * v / total
	}
	fmt.Fprintf(w, "%s: %d accesses (%d hits), %d windows, %d switches, %d drains (%d stale)\n",
		name, a.Accesses, a.Hits, a.Windows, a.Switches, a.Drains, a.StaleDrains)
	fmt.Fprintf(w, "%s: fifo enq=%d drop=%d\n", name, s.FIFOEnqueued, s.FIFODropped)
	for _, c := range []struct {
		label string
		v     float64
	}{
		{"data read", s.Energy.DataRead},
		{"data write", s.Energy.DataWrite},
		{"meta read", s.Energy.MetaRead},
		{"meta write", s.Energy.MetaWrite},
		{"encoder", s.Energy.Encoder},
		{"switch", s.Energy.Switch},
		{"periphery", s.Energy.Periphery},
	} {
		fmt.Fprintf(w, "  %-10s %12s  %5.1f%%\n", c.label, energy.Format(c.v), share(c.v))
	}
	fmt.Fprintf(w, "  %-10s %12s\n\n", "total", energy.Format(total))
}

// timeline folds the event stream into fixed-width bins by event index —
// the trace's own notion of time — counting each kind per bin.
func timeline(events []obs.Event, bins int) *experiments.Table {
	if bins > len(events) && len(events) > 0 {
		bins = len(events)
	}
	type counts struct{ acc, win, sw, dr uint64 }
	per := make([]counts, bins)
	for i, e := range events {
		b := i * bins / len(events)
		switch e.(type) {
		case *obs.AccessEvent:
			per[b].acc++
		case *obs.WindowEvent:
			per[b].win++
		case *obs.SwitchEvent:
			per[b].sw++
		case *obs.DrainEvent:
			per[b].dr++
		}
	}
	t := &experiments.Table{
		ID:          "timeline",
		Kind:        "trace",
		Title:       "activity per event-index bin",
		Tag:         "[trace]",
		Columns:     []string{"bin", "accesses", "windows", "switches", "drains"},
		ChartColumn: "switches",
	}
	for i, c := range per {
		t.AddRow(fmt.Sprintf("%d", i), c.acc, c.win, c.sw, c.dr)
	}
	return t
}
