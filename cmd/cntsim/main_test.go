package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/obs"
)

// TestRunErrors drives the command through its error surface: every bad
// invocation must come back as a returned error (non-zero exit in main)
// whose message names the offending input.
func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte(`{"device": ["not", "a", "string"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	unknownField := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknownField, []byte(`{"not_a_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string // substring of the error message
	}{
		{"no source", []string{}, "exactly one of"},
		{"two sources", []string{"-workload", "mm", "-program", "matmul"}, "exactly one of"},
		{"unknown workload", []string{"-workload", "nope"}, "nope"},
		{"unknown program", []string{"-program", "nope"}, "unknown program"},
		{"missing trace file", []string{"-trace", filepath.Join(dir, "absent.txt")}, "absent.txt"},
		{"unknown variant", []string{"-workload", "mm", "-variant", "nope"}, "unknown variant"},
		{"unknown device", []string{"-workload", "mm", "-device", "nope"}, "nope"},
		{"window zero", []string{"-workload", "mm", "-window", "0"}, "-window"},
		{"window negative", []string{"-workload", "mm", "-window", "-3"}, "-window"},
		{"partitions indivisible", []string{"-workload", "mm", "-partitions", "7"}, "-partitions"},
		{"partitions over mask width", []string{"-workload", "mm", "-partitions", "128"}, "-partitions"},
		{"deltat too big", []string{"-workload", "mm", "-deltat", "1.5"}, "-deltat"},
		{"deltat negative", []string{"-workload", "mm", "-deltat", "-0.1"}, "-deltat"},
		{"unparseable flag", []string{"-window", "abc"}, "invalid value"},
		{"missing config file", []string{"-config", filepath.Join(dir, "absent.json")}, "absent.json"},
		{"invalid config JSON", []string{"-config", badJSON}, "config"},
		{"unknown config field", []string{"-config", unknownField}, "not_a_field"},
		{"trace-out with compare", []string{"-workload", "mm", "-compare", "-trace-out", filepath.Join(dir, "t.jsonl")}, "-trace-out"},
		{"metrics-out with compare", []string{"-workload", "mm", "-compare", "-metrics-out", filepath.Join(dir, "m.json")}, "-metrics-out"},
		{"trace-out unwritable", []string{"-workload", "mm", "-trace-out", filepath.Join(dir, "no-such-dir", "t.jsonl")}, "no-such-dir"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunTraceAndMetricsOut runs one kernel with both telemetry outputs
// and checks the artifacts: the event stream must decode and reconcile
// internally, and the metric snapshot must be valid JSON carrying the
// per-cache counters.
func TestRunTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	var out, errBuf bytes.Buffer
	args := []string{"-workload", "list", "-trace-out", events, "-metrics-out", metrics}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ReconcileEvents(evs); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["l1d_accesses_total"] == 0 {
		t.Errorf("metrics snapshot has no l1d accesses: %v", snap.Counters)
	}
}

// TestRunFaultFlags drives the fault-injection flags end to end: a
// nonzero -fault-rate must surface device damage in the report, the
// output must be a pure function of the seed, and an out-of-range knob
// must fail before any simulation runs.
func TestRunFaultFlags(t *testing.T) {
	render := func() string {
		var out, errBuf bytes.Buffer
		args := []string{"-workload", "list", "-fault-rate", "0.01", "-fault-seed", "7"}
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := render()
	if !strings.Contains(first, "faults: stuck=") {
		t.Fatalf("faulted run prints no fault summary:\n%s", first)
	}
	if first != render() {
		t.Error("same fault seed produced different reports across runs")
	}

	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "faults:") {
		t.Errorf("healthy run prints a fault summary:\n%s", out.String())
	}

	err := run([]string{"-workload", "list", "-fault-spread", "1.5"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "energy_spread") {
		t.Errorf("out-of-range -fault-spread returned %v, want an energy_spread validation error", err)
	}
}

// TestTraceOutAtomicOnFailure pins the crash-safety contract of
// -trace-out: when the run fails after the sink was opened, the target
// path must not spring into existence and no temp file may be left in
// the directory.
func TestTraceOutAtomicOnFailure(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "nope", "-trace-out", events}, &out, &errBuf); err == nil {
		t.Fatal("run with an unknown workload succeeded")
	}
	if _, err := os.Stat(events); !os.IsNotExist(err) {
		t.Errorf("failed run left a trace file at %s", events)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed run left stray files in the output directory: %v", entries)
	}
}

// TestRunExampleConfig checks the one cheap success path: the sample
// configuration must print to stdout and round-trip through the parser
// (which TestRunErrors already proves rejects malformed files).
func TestRunExampleConfig(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-example-config"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cnt-cache") {
		t.Fatalf("example config missing the default variant:\n%s", out.String())
	}
}

// readSpans loads a span JSONL artifact and audits it before handing
// the spans back.
func readSpans(t *testing.T, path string) []*obs.SpanEvent {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ReconcileSpans(events); err != nil {
		t.Fatalf("span artifact does not reconcile: %v", err)
	}
	var spans []*obs.SpanEvent
	for _, e := range events {
		if s, ok := e.(*obs.SpanEvent); ok {
			spans = append(spans, s)
		}
	}
	return spans
}

// TestSpanOutRun pins the -span-out artifact of a plain run: one trace
// rooted at "job" with load/run/render/flush children nested inside,
// and a report byte-identical to an untraced run.
func TestSpanOutRun(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "spans.jsonl")
	var traced, errBuf bytes.Buffer
	if err := run([]string{"-workload", "mm", "-span-out", spanPath}, &traced, &errBuf); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := run([]string{"-workload", "mm"}, &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traced.Bytes(), plain.Bytes()) {
		t.Error("-span-out changed the report bytes")
	}

	spans := readSpans(t, spanPath)
	byName := map[string]*obs.SpanEvent{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["job"]
	if root == nil || root.Parent != "" {
		t.Fatalf("no parentless job root in %v", spans)
	}
	for _, stage := range []string{"load", "run", "render", "flush"} {
		s := byName[stage]
		if s == nil {
			t.Fatalf("span artifact missing stage %q", stage)
		}
		if s.Trace != root.Trace {
			t.Errorf("%s span in trace %s, want the job trace %s", stage, s.Trace, root.Trace)
		}
		if s.Start < root.Start || s.EndNS() > root.EndNS() {
			t.Errorf("%s span escapes the job root interval", stage)
		}
	}
	if got := root.Attrs["mode"]; got != "run" {
		t.Errorf("job root mode = %q, want run", got)
	}
}

// TestSpanOutCompare: unlike -trace-out, -span-out composes with
// -compare — each cell span names its variant, so the stream stays
// attributable.
func TestSpanOutCompare(t *testing.T) {
	spanPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "mm", "-compare", "-span-out", spanPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	spans := readSpans(t, spanPath)
	variants := map[string]bool{}
	var compareSpan *obs.SpanEvent
	for _, s := range spans {
		switch s.Name {
		case "cell":
			variants[s.Attrs["variant"]] = true
		case "compare":
			compareSpan = s
		}
	}
	if compareSpan == nil {
		t.Fatal("no compare span")
	}
	if len(variants) < 2 {
		t.Errorf("cell spans name %d variants, want one per comparison column", len(variants))
	}
}
