package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrors drives the command through its error surface: every bad
// invocation must come back as a returned error (non-zero exit in main)
// whose message names the offending input.
func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte(`{"device": ["not", "a", "string"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	unknownField := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknownField, []byte(`{"not_a_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string // substring of the error message
	}{
		{"no source", []string{}, "exactly one of"},
		{"two sources", []string{"-workload", "mm", "-program", "matmul"}, "exactly one of"},
		{"unknown workload", []string{"-workload", "nope"}, "nope"},
		{"unknown program", []string{"-program", "nope"}, "unknown program"},
		{"missing trace file", []string{"-trace", filepath.Join(dir, "absent.txt")}, "absent.txt"},
		{"unknown variant", []string{"-workload", "mm", "-variant", "nope"}, "unknown variant"},
		{"unknown device", []string{"-workload", "mm", "-device", "nope"}, "nope"},
		{"window zero", []string{"-workload", "mm", "-window", "0"}, "-window"},
		{"window negative", []string{"-workload", "mm", "-window", "-3"}, "-window"},
		{"partitions indivisible", []string{"-workload", "mm", "-partitions", "7"}, "-partitions"},
		{"partitions over mask width", []string{"-workload", "mm", "-partitions", "128"}, "-partitions"},
		{"deltat too big", []string{"-workload", "mm", "-deltat", "1.5"}, "-deltat"},
		{"deltat negative", []string{"-workload", "mm", "-deltat", "-0.1"}, "-deltat"},
		{"unparseable flag", []string{"-window", "abc"}, "invalid value"},
		{"missing config file", []string{"-config", filepath.Join(dir, "absent.json")}, "absent.json"},
		{"invalid config JSON", []string{"-config", badJSON}, "config"},
		{"unknown config field", []string{"-config", unknownField}, "not_a_field"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunExampleConfig checks the one cheap success path: the sample
// configuration must print to stdout and round-trip through the parser
// (which TestRunErrors already proves rejects malformed files).
func TestRunExampleConfig(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-example-config"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cnt-cache") {
		t.Fatalf("example config missing the default variant:\n%s", out.String())
	}
}
