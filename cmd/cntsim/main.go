// Command cntsim runs one workload — a bundled benchmark kernel, a
// bundled ISA program, or a trace file — through the simulated cache
// hierarchy and prints the architectural and energy report for a chosen
// encoding variant (or a side-by-side comparison of all variants).
// Every invocation executes through internal/run.Spec, the unified
// drive path shared with cntbench, cntexplore and the examples.
//
// Usage:
//
//	cntsim -workload mm                 # bundled kernel, CNT-Cache vs baseline
//	cntsim -program matmul              # bundled ISA program (I+D traffic)
//	cntsim -trace t.bin                 # binary or text trace file
//	cntsim -workload list -compare      # all variants side by side
//	cntsim -workload mm -variant baseline -window 31 -partitions 16
//	cntsim -workload mm -trace-out events.jsonl -metrics-out metrics.json
//	cntsim -workload mm -compare -span-out spans.jsonl   # lifecycle spans (cntstat -spans)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/cache"
	"repro/internal/cnfet"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/obs"
	simrun "repro/internal/run"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cntsim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flag parsing against
// args, reports to stdout, diagnostics to stderr, every failure a
// returned error (the only os.Exit lives in main).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cntsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "bundled kernel: "+strings.Join(workload.Names(), ","))
	prog := fs.String("program", "", "bundled ISA program: "+strings.Join(isa.ProgramNames(), ","))
	traceFile := fs.String("trace", "", "trace file (.txt or binary)")
	variant := fs.String("variant", simrun.DefaultVariant, "encoding variant: "+strings.Join(core.VariantNames(), ","))
	compare := fs.Bool("compare", false, "run every variant and print a comparison")
	window := fs.Int("window", 15, "prediction window W")
	partitions := fs.Int("partitions", 8, "partition count K")
	deltaT := fs.Float64("deltat", core.DefaultDeltaT, "switch hysteresis")
	device := fs.String("device", simrun.DefaultDevice, "device preset: "+strings.Join(cnfet.PresetNames(), ","))
	seed := fs.Int64("seed", 1, "workload seed")
	jobs := fs.Int("jobs", 0, "comparison worker count (0 = one per CPU)")
	configPath := fs.String("config", "", "JSON run specification (overrides variant/device/geometry flags)")
	exampleConfig := fs.Bool("example-config", false, "print a sample configuration file and exit")
	inspect := fs.Bool("inspect", false, "dump the resolved hierarchy (per-level geometry, device, variant) and the D-cache line-state snapshot (masks, density histograms) after the run")
	traceOut := fs.String("trace-out", "", "write a JSONL event trace of the run to this file (see cntstat)")
	metricsOut := fs.String("metrics-out", "", "write a JSON metric snapshot of the run to this file")
	spanOut := fs.String("span-out", "", "write a JSONL span trace of the run's lifecycle to this file (see cntstat -spans; works with -compare: cell spans carry variant attributes)")
	faultRate := fs.Float64("fault-rate", 0, "composite CNT fault rate: stuck cells, transient flips and predictor upsets at this per-cell/per-access probability (0 disables; see internal/fault)")
	faultSpread := fs.Float64("fault-spread", 0, "per-line energy-scale half-width modeling CNT-count variation, in [0,1)")
	faultSeed := fs.Int64("fault-seed", 1, "fault-injection seed (independent of -seed)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*traceOut != "" || *metricsOut != "") && *compare {
		// Compare runs every variant concurrently; their events and
		// counters would interleave into one stream no reader could
		// attribute to a variant.
		return fmt.Errorf("-trace-out/-metrics-out cannot be combined with -compare (the variants' telemetry would interleave)")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "cntsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "cntsim:", err)
			}
		}()
	}

	if *exampleConfig {
		return config.WriteExample(stdout)
	}

	// The optional telemetry consumers: a JSONL event sink and a metric
	// registry, attached to both L1s of whatever simulation runs below
	// and persisted after it succeeds. Both artifacts are written
	// atomically — the event stream accumulates in a temp file that is
	// only renamed into place on success, so an aborted run never leaves
	// a truncated trace where a complete one is expected.
	var (
		sink   *obs.JSONLSink
		traceF *atomicio.File
		reg    *obs.Registry
	)
	if *traceOut != "" {
		f, err := atomicio.Create(*traceOut)
		if err != nil {
			return err
		}
		traceF, sink = f, obs.NewJSONLSink(f)
		defer traceF.Abort() // no-op once persist has committed
	}
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	// The span trace is a separate artifact on the same atomic-commit
	// terms: a root "job" span covers the whole invocation, the run
	// layer nests load/run/compare/cell spans under it through
	// Spec.Tracer, and render/flush children close the lifecycle. The
	// file commits only after the root has ended, so a committed span
	// trace always reconciles (cntstat -spans re-audits it anyway).
	var (
		spanSink *obs.JSONLSink
		spanF    *atomicio.File
		tracer   *obs.Tracer
		root     *obs.Span
	)
	if *spanOut != "" {
		f, err := atomicio.Create(*spanOut)
		if err != nil {
			return err
		}
		spanF = f
		spanSink = obs.NewJSONLSink(f)
		defer spanF.Abort() // no-op once committed
		mode := "run"
		if *compare {
			mode = "compare"
		}
		tracer = obs.NewTracer(spanSink)
		root = tracer.StartSpan("job", obs.SpanContext{}).
			Annotate("cmd", "cntsim").
			Annotate("mode", mode)
	}

	persist := func() error {
		// The artifact flush is itself a traced stage; it must end before
		// the root does, and the root before the span file commits, or
		// the committed stream would miss its own closing records.
		fspan := root.Child("flush")
		var err error
		if sink != nil {
			if err = sink.Flush(); err == nil {
				err = traceF.Commit()
			}
			if err != nil {
				err = fmt.Errorf("writing %s: %w", *traceOut, err)
			}
		}
		if err == nil && reg != nil {
			if werr := atomicio.WriteTo(*metricsOut, reg.WriteJSON); werr != nil {
				err = fmt.Errorf("writing %s: %w", *metricsOut, werr)
			}
		}
		fspan.EndErr(err)
		root.End()
		if err == nil && spanSink != nil {
			if serr := spanSink.Flush(); serr != nil {
				err = fmt.Errorf("writing %s: %w", *spanOut, serr)
			} else if serr := spanF.Commit(); serr != nil {
				err = fmt.Errorf("writing %s: %w", *spanOut, serr)
			}
		}
		return err
	}

	// Build the run specification: from the config document when given
	// (knob flags are ignored then; a CLI source overrides the file's),
	// otherwise from the flags, with every knob vetted eagerly so a bad
	// value fails with a one-line error before any simulation is built.
	var spec simrun.Spec
	if *configPath != "" {
		doc, err := config.Load(*configPath)
		if err != nil {
			return err
		}
		spec, err = doc.Spec()
		if err != nil {
			return err
		}
		if *wl != "" || *prog != "" || *traceFile != "" {
			spec.Source = simrun.Source{Kernel: *wl, Program: *prog, TracePath: *traceFile}
		}
	} else {
		if *window < 1 {
			return fmt.Errorf("-window must be at least 1, got %d", *window)
		}
		if *deltaT < 0 || *deltaT >= 1 {
			return fmt.Errorf("-deltat must be in [0,1), got %g", *deltaT)
		}
		lineBytes := cache.DefaultHierarchyConfig().L1D.Geometry.LineBytes
		if err := encoding.CheckPartitions(lineBytes, *partitions); err != nil {
			return fmt.Errorf("-partitions %d: %w", *partitions, err)
		}
		params := core.DefaultParams()
		params.Partitions = *partitions
		params.Window = *window
		params.DeltaT = *deltaT
		params.Table = cnfet.EnergyTable{} // resolved from -device
		spec = simrun.Spec{
			Source:  simrun.Source{Kernel: *wl, Program: *prog, TracePath: *traceFile},
			Seed:    *seed,
			Device:  *device,
			Variant: *variant,
			Params:  &params,
		}
	}
	spec.Jobs = *jobs
	if sink != nil {
		spec.Trace = sink
	}
	if reg != nil {
		spec.Metrics = reg
	}
	if tracer != nil {
		spec.Tracer = tracer
		spec.SpanParent = root.Context()
	}
	// Fault flags layer on top of either path (and override a config
	// file's fault block); validation happens eagerly in Resolve.
	if *faultRate != 0 || *faultSpread != 0 {
		fc := fault.AtRate(*faultRate, *faultSeed)
		fc.EnergySpread = *faultSpread
		spec.Fault = &fc
	}

	sess, err := spec.Resolve()
	if err != nil {
		return err
	}

	if *compare {
		cmp, err := sess.Compare()
		if err != nil {
			return err
		}
		rspan := root.Child("render")
		simrun.WriteComparisonText(stdout, sess.Instance, cmp)
		rspan.End()
		return persist()
	}

	start := time.Now()
	rep, err := sess.Run()
	if err != nil {
		return err
	}
	// Throughput goes to stderr: stdout's report stays byte-stable for
	// tests and diffing, while interactive runs still see how fast the
	// batched replay path chewed through the trace.
	if secs := time.Since(start).Seconds(); secs > 0 {
		n := rep.DStats.Accesses + rep.IStats.Accesses
		fmt.Fprintf(stderr, "replayed %d accesses in %.3fs (%.2f Maccess/s)\n",
			n, secs, float64(n)/secs/1e6)
	}
	rspan := root.Child("render")
	rep.WriteText(stdout)
	if *inspect {
		fmt.Fprintln(stdout, "\nresolved hierarchy:")
		for _, lvl := range sess.Levels() {
			g := lvl.Geometry
			fmt.Fprintf(stdout, "  %-4s %4d sets x %2d ways x %2dB (%d KiB)  device=%s  variant=%s\n",
				lvl.Name, g.Sets, g.Ways, g.LineBytes,
				g.Sets*g.Ways*g.LineBytes/1024, lvl.Device, lvl.Variant)
		}
		snap, err := sess.Snapshot()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nD-cache line-state snapshot:")
		fmt.Fprint(stdout, snap.String())
	}
	rspan.End()
	return persist()
}
