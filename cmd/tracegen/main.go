// Command tracegen materializes a bundled workload (kernel, ISA program
// or synthetic mix) into a trace file in the text or binary format, so
// traces can be archived, inspected, or replayed with cntsim -trace.
//
// Usage:
//
//	tracegen -workload mm -o mm.bin
//	tracegen -program matmul -format text -o matmul.txt
//	tracegen -mix -readfrac 0.8 -density 0.1 -accesses 100000 -o mix.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "bundled kernel: "+strings.Join(workload.Names(), ","))
	prog := flag.String("program", "", "bundled ISA program: "+strings.Join(isa.ProgramNames(), ","))
	mix := flag.Bool("mix", false, "synthetic mix generator")
	readFrac := flag.Float64("readfrac", 0.7, "mix: read fraction")
	density := flag.Float64("density", 0.2, "mix: data one-density")
	accesses := flag.Int("accesses", 100000, "mix: stream length")
	footprint := flag.Int("footprint", 64*1024, "mix: footprint bytes")
	format := flag.String("format", "binary", "output format hint: the path extension decides (.txt/.txt.gz text, else binary; .gz compresses)")
	out := flag.String("o", "", "output file (required); extension picks format")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-o output file is required"))
	}

	inst, err := build(*wl, *prog, *mix, *readFrac, *density, *accesses, *footprint, *seed)
	if err != nil {
		fatal(err)
	}

	path := *out
	if *format == "text" && !strings.Contains(path, ".txt") {
		fatal(fmt.Errorf("-format text requires a .txt or .txt.gz output path"))
	}
	if err := trace.WriteFile(path, inst.Accesses); err != nil {
		fatal(err)
	}
	if len(inst.Init) > 0 {
		fmt.Fprintf(os.Stderr, "note: workload %s also has an initial memory image (%d regions); "+
			"replaying the bare trace against empty memory changes read data contents\n",
			inst.Name, len(inst.Init))
	}
	r, w, fc := inst.Counts()
	fmt.Fprintf(os.Stderr, "wrote %d accesses (R=%d W=%d F=%d) to %s\n",
		len(inst.Accesses), r, w, fc, *out)
}

func build(wl, prog string, mix bool, rf, d float64, accs, fp int, seed int64) (*workload.Instance, error) {
	selected := 0
	if wl != "" {
		selected++
	}
	if prog != "" {
		selected++
	}
	if mix {
		selected++
	}
	if selected != 1 {
		return nil, fmt.Errorf("exactly one of -workload, -program, -mix is required")
	}
	switch {
	case wl != "":
		b, err := workload.ByName(wl)
		if err != nil {
			return nil, err
		}
		return b.Build(seed), nil
	case prog != "":
		src, ok := isa.Programs()[prog]
		if !ok {
			return nil, fmt.Errorf("unknown program %q (have %v)", prog, isa.ProgramNames())
		}
		_, accsOut, err := isa.RunProgram(src, isa.CodeBase, isa.DefaultMaxSteps)
		if err != nil {
			return nil, err
		}
		return &workload.Instance{Name: prog, Accesses: accsOut}, nil
	default:
		return workload.Mix(workload.MixConfig{
			ReadFraction: rf, OneDensity: d, Accesses: accs,
			FootprintBytes: fp, HotFraction: 0.8,
		}, seed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
