// Command tracegen materializes a bundled workload (kernel, ISA program
// or synthetic mix) into a trace file in the text or binary format, so
// traces can be archived, inspected, or replayed with cntsim -trace.
// Kernel and program sources resolve through internal/run.Source, the
// same loader every simulation driver uses.
//
// Usage:
//
//	tracegen -workload mm -o mm.bin
//	tracegen -program matmul -format text -o matmul.txt
//	tracegen -mix -readfrac 0.8 -density 0.1 -accesses 100000 -o mix.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/isa"
	simrun "repro/internal/run"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: flag parsing against args,
// notes to stderr, every failure a returned error.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "bundled kernel: "+strings.Join(workload.Names(), ","))
	prog := fs.String("program", "", "bundled ISA program: "+strings.Join(isa.ProgramNames(), ","))
	mix := fs.Bool("mix", false, "synthetic mix generator")
	readFrac := fs.Float64("readfrac", 0.7, "mix: read fraction")
	density := fs.Float64("density", 0.2, "mix: data one-density")
	accesses := fs.Int("accesses", 100000, "mix: stream length")
	footprint := fs.Int("footprint", 64*1024, "mix: footprint bytes")
	format := fs.String("format", "binary", "output format hint: the path extension decides (.txt/.txt.gz text, else binary; .gz compresses)")
	out := fs.String("o", "", "output file (required); extension picks format")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *out == "" {
		return fmt.Errorf("-o output file is required")
	}
	if *format == "text" && !strings.Contains(*out, ".txt") {
		return fmt.Errorf("-format text requires a .txt or .txt.gz output path")
	}

	inst, err := build(*wl, *prog, *mix, *readFrac, *density, *accesses, *footprint, *seed)
	if err != nil {
		return err
	}

	if err := trace.WriteFile(*out, inst.Accesses); err != nil {
		return err
	}
	if len(inst.Init) > 0 {
		fmt.Fprintf(stderr, "note: workload %s also has an initial memory image (%d regions); "+
			"replaying the bare trace against empty memory changes read data contents\n",
			inst.Name, len(inst.Init))
	}
	r, w, fc := inst.Counts()
	fmt.Fprintf(stderr, "wrote %d accesses (R=%d W=%d F=%d) to %s\n",
		len(inst.Accesses), r, w, fc, *out)
	return nil
}

func build(wl, prog string, mix bool, rf, d float64, accs, fp int, seed int64) (*workload.Instance, error) {
	selected := 0
	if wl != "" {
		selected++
	}
	if prog != "" {
		selected++
	}
	if mix {
		selected++
	}
	if selected != 1 {
		return nil, fmt.Errorf("exactly one of -workload, -program, -mix is required")
	}
	if mix {
		return workload.Mix(workload.MixConfig{
			ReadFraction: rf, OneDensity: d, Accesses: accs,
			FootprintBytes: fp, HotFraction: 0.8,
		}, seed)
	}
	return simrun.Source{Kernel: wl, Program: prog}.Load(seed)
}
