package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRunErrors drives the generator through its error surface; every
// failure must arrive before any file is written.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing output", []string{"-workload", "mm"}, "-o output file is required"},
		{"no source", []string{"-o", "t.bin"}, "exactly one of"},
		{"two sources", []string{"-workload", "mm", "-program", "matmul", "-o", "t.bin"}, "exactly one of"},
		{"mix plus kernel", []string{"-workload", "mm", "-mix", "-o", "t.bin"}, "exactly one of"},
		{"unknown workload", []string{"-workload", "nope", "-o", "t.bin"}, "nope"},
		{"unknown program", []string{"-program", "nope", "-o", "t.bin"}, "unknown program"},
		{"text format non-txt path", []string{"-workload", "mm", "-format", "text", "-o", "t.bin"}, ".txt"},
		{"unparseable flag", []string{"-accesses", "abc"}, "invalid value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(c.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunWritesReplayableTrace generates a kernel trace and reads it
// back through the trace package, checking the round trip and the
// stderr summary.
func TestRunWritesReplayableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.bin")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-workload", "hist", "-o", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	accs, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("generated trace does not read back: %v", err)
	}
	if len(accs) == 0 {
		t.Fatal("generated trace is empty")
	}
	if !strings.Contains(errBuf.String(), "wrote") || !strings.Contains(errBuf.String(), path) {
		t.Errorf("summary line missing:\n%s", errBuf.String())
	}
}

// TestRunMixTextFormat exercises the synthetic-mix path and the text
// encoding.
func TestRunMixTextFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.txt")
	var out, errBuf bytes.Buffer
	args := []string{"-mix", "-accesses", "500", "-format", "text", "-o", path}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	accs, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 500 {
		t.Errorf("trace length = %d, want 500", len(accs))
	}
}
