// Isacore: write a custom kernel in the bundled assembly language, run it
// on the functional VM, and feed its instruction and data references
// through the split-L1 CNT-Cache hierarchy — the full paper pipeline from
// program to joules.
//
//	go run ./examples/isacore
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// A dot product over two 512-element arrays that the program itself
// initializes: a[i] = i&15 (zero-heavy), b[i] = i (small ints).
const kernel = `
        lui  r8, 0x10           ; a = 0x10000
        lui  r9, 0x18           ; b = 0x18000
        addi r7, r0, 512
        addi r1, r0, 0
init:   bge  r1, r7, dot0
        slli r5, r1, 2
        add  r6, r5, r8
        andi r2, r1, 15
        sw   r2, 0(r6)
        add  r6, r5, r9
        sw   r1, 0(r6)
        addi r1, r1, 1
        jal  r0, init
dot0:   addi r1, r0, 0
        addi r4, r0, 0
dot:    bge  r1, r7, done
        slli r5, r1, 2
        add  r6, r5, r8
        lw   r2, 0(r6)
        add  r6, r5, r9
        lw   r3, 0(r6)
        mul  r2, r2, r3
        add  r4, r4, r2
        addi r1, r1, 1
        jal  r0, dot
done:   lui  r9, 0x20
        sw   r4, 0(r9)          ; result at 0x20000
        halt
`

func run(opts core.Options) (*core.Report, uint32, error) {
	prog, err := isa.Assemble(kernel, isa.CodeBase)
	if err != nil {
		return nil, 0, err
	}
	m := mem.New()
	sim, err := core.NewSim(core.SimConfig{
		Hierarchy: core.DefaultSimConfig().Hierarchy, DOpts: opts, IOpts: opts}, m)
	if err != nil {
		return nil, 0, err
	}
	vm := isa.NewVM(m, trace.SinkFunc(sim.Step))
	vm.Load(prog)
	if err := vm.Run(isa.DefaultMaxSteps); err != nil {
		return nil, 0, err
	}
	return sim.Finish("dotprod", opts.Spec.String()), m.ReadUint32(0x20000), nil
}

func main() {
	base, result, err := run(core.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}
	cnt, _, err := run(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	var want uint32
	for i := uint32(0); i < 512; i++ {
		want += (i & 15) * i
	}
	fmt.Printf("dot product = %d (expected %d)\n\n", result, want)

	fmt.Printf("%-10s %14s %14s\n", "", "baseline", "cnt-cache")
	fmt.Printf("%-10s %14s %14s  (I-cache saving %.1f%%)\n", "L1I",
		energy.Format(base.IEnergy.Total()), energy.Format(cnt.IEnergy.Total()),
		100*energy.Saving(base.IEnergy.Total(), cnt.IEnergy.Total()))
	fmt.Printf("%-10s %14s %14s  (D-cache saving %.1f%%)\n", "L1D",
		energy.Format(base.DEnergy.Total()), energy.Format(cnt.DEnergy.Total()),
		100*energy.Saving(base.DEnergy.Total(), cnt.DEnergy.Total()))
	fmt.Printf("\nI-cache: %s\nD-cache: %s\n", cnt.IStats, cnt.DStats)
}
