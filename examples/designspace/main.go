// Designspace: sweep the prediction window W against the partition count
// K on one workload and print the savings grid — how a designer would
// size the H&D metadata budget for their traffic.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/energy"
	"repro/internal/sram"
	"repro/internal/workload"
)

func main() {
	inst := workload.List(1) // heterogeneous node layout: partitioning matters
	hier := cache.DefaultHierarchyConfig()

	base, err := core.RunInstance(inst, core.SimConfig{
		Hierarchy: hier, DOpts: core.BaselineOptions(), IOpts: core.BaselineOptions()})
	if err != nil {
		log.Fatal(err)
	}
	baseTotal := base.DEnergy.Total()
	fmt.Printf("workload %s: baseline D-cache %s\n\n", inst.Name, energy.Format(baseTotal))

	windows := []int{7, 15, 31, 63}
	parts := []int{1, 4, 8, 16, 32}

	fmt.Printf("saving%%        ")
	for _, k := range parts {
		fmt.Printf("K=%-7d", k)
	}
	fmt.Println("meta-bits(W,K=8)")
	for _, w := range windows {
		fmt.Printf("W=%-12d", w)
		for _, k := range parts {
			opts := core.DefaultOptions()
			opts.Window = w
			opts.Spec = encoding.Spec{Kind: encoding.KindAdaptive, Partitions: k}
			rep, err := core.RunInstance(inst, core.SimConfig{Hierarchy: hier, DOpts: opts, IOpts: opts})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%+-8.1f ", 100*energy.Saving(baseTotal, rep.DEnergy.Total()))
		}
		mb, err := sram.MetadataBits(w, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d\n", mb)
	}

	fmt.Println("\nreading the grid: K=1 cannot exploit the heterogeneous node layout;")
	fmt.Println("large K pays direction-bit energy on every access; large W reacts")
	fmt.Println("slowly but spends fewer history bits per decision.")
}
