// Matrix: run the matrix-multiply benchmark kernel through every encoding
// variant and print the per-component energy breakdown — the scenario the
// paper's D-cache claim is built on (read-dominated, zero-heavy integer
// data). The whole comparison is three lines of internal/run: declare a
// Spec, resolve it, compare.
//
//	go run ./examples/matrix
package main

import (
	"fmt"
	"log"

	"repro/internal/energy"
	"repro/internal/run"
)

func main() {
	sess, err := run.Spec{Source: run.Source{Kernel: "mm"}}.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	inst := sess.Instance
	reads, writes, _ := inst.Counts()
	fmt.Printf("mm: %d accesses (%.1f%% reads), 48x48 int32 matrices\n\n",
		len(inst.Accesses), 100*float64(reads)/float64(reads+writes))

	cmp, err := sess.Compare()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-13s %12s %9s %10s %10s %8s %8s\n",
		"variant", "D total", "saving", "data read", "data write", "meta", "switch")
	for i, name := range cmp.Names {
		eb := cmp.Reports[i].DEnergy
		fmt.Printf("%-13s %12s %+8.1f%% %10s %10s %8s %8s\n",
			name, energy.Format(eb.Total()), 100*cmp.SavingOf(name),
			energy.Format(eb.DataRead), energy.Format(eb.DataWrite),
			energy.Format(eb.MetaRead+eb.MetaWrite), energy.Format(eb.Switch))
	}

	fmt.Println("\nwhy: reading '0' costs ~7.4x reading '1' on the CNFET cell, and the")
	fmt.Println("matrices are zero-heavy, so re-encoding read-intensive lines as their")
	fmt.Println("complement turns expensive zero-reads into cheap one-reads.")
}
