// Tracefile: generate a synthetic workload, archive it as a binary trace
// file, read it back, and replay it through the simulator — the
// round-trip a user follows to bring their own traces.
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// A read-heavy zero-heavy synthetic mix: CNT-Cache's best regime.
	inst, err := workload.Mix(workload.MixConfig{
		ReadFraction:   0.85,
		OneDensity:     0.08,
		Accesses:       50000,
		FootprintBytes: 32 * 1024,
		HotFraction:    0.8,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Archive the stream in the binary trace format.
	dir, err := os.MkdirTemp("", "cnt-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mix.bin")

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewBinaryWriter(f)
	for _, a := range inst.Accesses {
		if err := w.Access(a); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("archived %d accesses to %s (%d KiB)\n", len(inst.Accesses), path, info.Size()/1024)

	// Read it back and replay under baseline and CNT-Cache.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	accs, err := trace.Collect(trace.NewBinaryReader(rf))
	if err != nil {
		log.Fatal(err)
	}
	replay := &workload.Instance{Name: "mix.bin", Init: inst.Init, Accesses: accs}

	hier := cache.DefaultHierarchyConfig()
	base, err := core.RunInstance(replay, core.SimConfig{
		Hierarchy: hier, DOpts: core.BaselineOptions(), IOpts: core.BaselineOptions()})
	if err != nil {
		log.Fatal(err)
	}
	cnt, err := core.RunInstance(replay, core.SimConfig{
		Hierarchy: hier, DOpts: core.DefaultOptions(), IOpts: core.DefaultOptions()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline:  %s (%s)\n", energy.Format(base.DEnergy.Total()), base.DStats)
	fmt.Printf("cnt-cache: %s (switches=%d, fifo drop=%.3f)\n",
		energy.Format(cnt.DEnergy.Total()), cnt.DSwitches, cnt.DFIFO.DropRate())
	fmt.Printf("saving:    %.1f%%\n",
		100*energy.Saving(base.DEnergy.Total(), cnt.DEnergy.Total()))
}
