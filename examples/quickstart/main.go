// Quickstart: build a CNT-Cache over a memory image, push a few accesses
// through it, and read back the architectural and energy reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/sram"
	"repro/internal/trace"
)

func main() {
	// A memory image holding a zero-heavy array, as integer program data
	// tends to be.
	m := mem.New()
	for i := 0; i < 1024; i++ {
		m.WriteUint32(uint64(4*i), uint32(i%7))
	}

	// An 8 KiB 4-way CNT-Cache with the paper's default knobs (adaptive
	// encoding, K=8 partitions, W=15 window).
	cfg := cache.Config{
		Name:     "L1D",
		Geometry: sram.Geometry{Sets: 32, Ways: 4, LineBytes: 64},
	}
	cnt, err := core.New(cfg, cache.MemBackend{M: m}, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A read-heavy sweep: the predictor will classify these lines as
	// read-intensive and re-encode the zero-heavy data as stored ones,
	// because reading '1' is cheap on a CNFET cell.
	for pass := 0; pass < 40; pass++ {
		for addr := uint64(0); addr < 4096; addr += 8 {
			if err := cnt.Access(trace.Access{Op: trace.Read, Addr: addr, Size: 8}); err != nil {
				log.Fatal(err)
			}
		}
	}
	cnt.DrainAll()

	fmt.Println("CNT-Cache quickstart")
	fmt.Printf("  stats:    %s\n", cnt.Stats())
	fmt.Printf("  energy:   %s\n", cnt.Energy())
	fmt.Printf("  switches: %d over %d prediction windows\n", cnt.Switches(), cnt.Windows())

	// The same traffic on the unencoded baseline CNFET cache.
	base, err := core.New(cfg, cache.MemBackend{M: m}, core.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}
	for pass := 0; pass < 40; pass++ {
		for addr := uint64(0); addr < 4096; addr += 8 {
			if err := base.Access(trace.Access{Op: trace.Read, Addr: addr, Size: 8}); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nbaseline: %s\n", energy.Format(base.Energy().Total()))
	fmt.Printf("cnt-cache: %s (saving %.1f%%)\n",
		energy.Format(cnt.Energy().Total()),
		100*energy.Saving(base.Energy().Total(), cnt.Energy().Total()))
}
